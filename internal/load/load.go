package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Op names one kind of generated request.
type Op string

// The four traffic classes of the mixed workload.
const (
	OpOverlap  Op = "overlap"  // POST /search/overlap (OJSP)
	OpCoverage Op = "coverage" // POST /search/coverage (CJSP)
	OpBatch    Op = "batch"    // POST /search/batch
	OpIngest   Op = "ingest"   // POST /ingest/dataset (upsert)
)

// ops is the fixed iteration order of the traffic classes.
var ops = []Op{OpOverlap, OpCoverage, OpBatch, OpIngest}

// Mix weights the traffic classes; weights are relative, not normalized.
// The zero Mix is invalid — use DefaultMix.
type Mix struct {
	Overlap  float64
	Coverage float64
	Batch    float64
	Ingest   float64
}

// DefaultMix is a search-heavy production-ish blend: mostly cheap OJSP,
// some expensive CJSP, occasional batches and writes.
func DefaultMix() Mix { return Mix{Overlap: 0.70, Coverage: 0.15, Batch: 0.10, Ingest: 0.05} }

func (m Mix) weight(op Op) float64 {
	switch op {
	case OpOverlap:
		return m.Overlap
	case OpCoverage:
		return m.Coverage
	case OpBatch:
		return m.Batch
	default:
		return m.Ingest
	}
}

// pick draws one op proportionally to the weights.
func (m Mix) pick(rng *rand.Rand) Op {
	total := m.Overlap + m.Coverage + m.Batch + m.Ingest
	if total <= 0 {
		return OpOverlap
	}
	v := rng.Float64() * total
	for _, op := range ops {
		if w := m.weight(op); v < w {
			return op
		} else {
			v -= w
		}
	}
	return OpOverlap
}

// ParseMix parses "overlap=70,coverage=15,batch=10,ingest=5" (weights are
// relative; omitted classes get weight 0).
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, found := strings.Cut(part, "=")
		w, err := strconv.ParseFloat(val, 64)
		if !found || err != nil || w < 0 {
			return m, fmt.Errorf("load: bad mix component %q (want class=weight)", part)
		}
		switch name {
		case "overlap":
			m.Overlap = w
		case "coverage":
			m.Coverage = w
		case "batch":
			m.Batch = w
		case "ingest":
			m.Ingest = w
		default:
			return m, fmt.Errorf("load: unknown traffic class %q", name)
		}
	}
	if m.Overlap+m.Coverage+m.Batch+m.Ingest <= 0 {
		return m, fmt.Errorf("load: mix %q has no positive weight", s)
	}
	return m, nil
}

// Options configure one load run. Target and Duration are required;
// everything else has a usable default.
type Options struct {
	// Target is the gateway base URL, e.g. "http://127.0.0.1:8080".
	Target string
	// Mode is "open" (paced arrivals at Rate/sec regardless of responses)
	// or "closed" (Clients concurrent clients, back-to-back requests).
	Mode string
	// Rate is the open-loop arrival rate in requests/second.
	Rate float64
	// Clients is the closed-loop concurrency (also bounds open-loop
	// outstanding requests at 16*Clients when set; default unbounded).
	Clients int
	// Duration is how long to offer load.
	Duration time.Duration
	// Mix weights the traffic classes (zero value → DefaultMix).
	Mix Mix
	// K, Delta, PointsPerQuery, BatchSize shape the generated queries.
	K              int
	Delta          float64
	PointsPerQuery int
	BatchSize      int
	// Bounds is the world rectangle queries are drawn from
	// (minX, minY, maxX, maxY); zero value → (-180,-90,180,90).
	Bounds [4]float64
	// IngestSource is the source name ingest upserts target; when empty
	// the ingest weight is dropped from the mix.
	IngestSource string
	// IngestIDs is the upsert ID range (IDs cycle in
	// [1e6, 1e6+IngestIDs)); default 512.
	IngestIDs int
	// Seed makes the generated traffic reproducible.
	Seed int64
	// ClientID is the X-Client-ID header prefix; closed-loop clients
	// append their index. Empty sends no header.
	ClientID string
	// HTTPClient overrides the HTTP client (tests inject one; the default
	// allows Clients+Rate-scaled idle connections).
	HTTPClient *http.Client
}

func (o *Options) defaults() {
	if o.Mode == "" {
		o.Mode = "closed"
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if (o.Mix == Mix{}) {
		o.Mix = DefaultMix()
	}
	if o.IngestSource == "" {
		o.Mix.Ingest = 0
	}
	if o.K <= 0 {
		o.K = 10
	}
	if o.Delta <= 0 {
		o.Delta = 10
	}
	if o.PointsPerQuery <= 0 {
		o.PointsPerQuery = 16
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 8
	}
	if o.Bounds == [4]float64{} {
		o.Bounds = [4]float64{-180, -90, 180, 90}
	}
	if o.IngestIDs <= 0 {
		o.IngestIDs = 512
	}
	if o.HTTPClient == nil {
		tr := &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		}
		o.HTTPClient = &http.Client{Transport: tr}
	}
}

// OpCount is the per-class outcome tally of a run.
type OpCount struct {
	Sent int64 `json:"sent"`
	OK   int64 `json:"ok"`
	Shed int64 `json:"shed"` // HTTP 429
	Err  int64 `json:"err"`  // everything else non-2xx + transport errors
}

// Result is the outcome of one load run.
type Result struct {
	Mode    string  `json:"mode"`
	Rate    float64 `json:"rate,omitempty"`    // open loop: offered req/s
	Clients int     `json:"clients,omitempty"` // closed loop: concurrency
	Seconds float64 `json:"seconds"`           // measured wall clock

	Sent         int64 `json:"sent"`
	OK           int64 `json:"ok"`
	Shed         int64 `json:"shed"`         // HTTP 429 (admission)
	ClientErrors int64 `json:"clientErrors"` // other 4xx
	ServerErrors int64 `json:"serverErrors"` // 5xx
	NetErrors    int64 `json:"netErrors"`    // transport failures

	Throughput float64 `json:"throughput"` // OK responses per second
	ShedRate   float64 `json:"shedRate"`   // shed / sent
	ErrorRate  float64 `json:"errorRate"`  // (server+net errors) / sent

	// Latency quantiles in milliseconds over ALL completed requests
	// (including shed ones — a fast 429 is part of the service the client
	// sees). Open-loop latencies are measured from the intended arrival.
	P50Ms  float64 `json:"p50Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
	MaxMs  float64 `json:"maxMs"`
	MeanMs float64 `json:"meanMs"`

	PerOp map[string]OpCount `json:"perOp"`

	// Slowest is the run's slowest completed requests (at most 5, slowest
	// first), each with the gateway-assigned trace ID — feed it to
	// GET /debug/traces/{id} to see where the time went. Empty when the
	// gateway has tracing disabled.
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// SlowRequest identifies one slow request by its trace ID.
type SlowRequest struct {
	Op      string  `json:"op"`
	Ms      float64 `json:"ms"`
	Status  int     `json:"status"`
	TraceID string  `json:"traceId"`
}

// maxSlow caps the slowest-request list the runner keeps.
const maxSlow = 5

// runner is the shared state of one run.
type runner struct {
	o    Options
	hist Hist

	sent, ok, shed, clientErr, serverErr, netErr atomic.Int64

	// perOp counters are updated atomically; the map itself is fixed at
	// construction.
	perOp map[Op]*OpCount

	// slowest holds the maxSlow slowest traced requests, slowest first.
	slowMu  sync.Mutex
	slowest []SlowRequest
}

// recordSlow keeps the request if it ranks among the maxSlow slowest so
// far. Requests without a trace ID (tracing disabled) are not kept — the
// list exists to be fed into GET /debug/traces/{id}.
func (r *runner) recordSlow(op Op, lat time.Duration, status int, traceID string) {
	if traceID == "" {
		return
	}
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	latMs := ms(lat)
	if len(r.slowest) == maxSlow && latMs <= r.slowest[maxSlow-1].Ms {
		return
	}
	i := len(r.slowest)
	for i > 0 && r.slowest[i-1].Ms < latMs {
		i--
	}
	r.slowest = append(r.slowest, SlowRequest{})
	copy(r.slowest[i+1:], r.slowest[i:])
	r.slowest[i] = SlowRequest{Op: string(op), Ms: latMs, Status: status, TraceID: traceID}
	if len(r.slowest) > maxSlow {
		r.slowest = r.slowest[:maxSlow]
	}
}

// Run offers load per the options until the duration elapses or ctx is
// cancelled, then reports. The error covers misconfiguration only —
// request failures are part of the Result.
func Run(ctx context.Context, o Options) (Result, error) {
	o.defaults()
	if o.Target == "" {
		return Result{}, fmt.Errorf("load: Target is required")
	}
	switch o.Mode {
	case "open":
		if o.Rate <= 0 {
			return Result{}, fmt.Errorf("load: open-loop mode needs Rate > 0")
		}
	case "closed":
	default:
		return Result{}, fmt.Errorf("load: mode must be open or closed, got %q", o.Mode)
	}
	r := &runner{o: o, perOp: make(map[Op]*OpCount, len(ops))}
	for _, op := range ops {
		r.perOp[op] = &OpCount{}
	}

	start := time.Now()
	if o.Mode == "open" {
		r.runOpen(ctx, start)
	} else {
		r.runClosed(ctx, start)
	}
	elapsed := time.Since(start).Seconds()

	res := Result{
		Mode:         o.Mode,
		Seconds:      elapsed,
		Sent:         r.sent.Load(),
		OK:           r.ok.Load(),
		Shed:         r.shed.Load(),
		ClientErrors: r.clientErr.Load(),
		ServerErrors: r.serverErr.Load(),
		NetErrors:    r.netErr.Load(),
		P50Ms:        ms(r.hist.Quantile(0.50)),
		P99Ms:        ms(r.hist.Quantile(0.99)),
		P999Ms:       ms(r.hist.Quantile(0.999)),
		MaxMs:        ms(r.hist.Max()),
		MeanMs:       ms(r.hist.Mean()),
		PerOp:        make(map[string]OpCount, len(ops)),
	}
	if o.Mode == "open" {
		res.Rate = o.Rate
	} else {
		res.Clients = o.Clients
	}
	if elapsed > 0 {
		res.Throughput = float64(res.OK) / elapsed
	}
	if res.Sent > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Sent)
		res.ErrorRate = float64(res.ServerErrors+res.NetErrors) / float64(res.Sent)
	}
	for op, c := range r.perOp {
		res.PerOp[string(op)] = *c
	}
	res.Slowest = r.slowest
	return res, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// runOpen paces arrivals at o.Rate and measures from the intended start:
// a slow server makes latencies climb, not the offered rate drop.
func (r *runner) runOpen(ctx context.Context, start time.Time) {
	interval := time.Duration(float64(time.Second) / r.o.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	deadline := start.Add(r.o.Duration)
	var wg sync.WaitGroup
	n := int64(0)
	for intended := start; intended.Before(deadline); intended = intended.Add(interval) {
		if d := time.Until(intended); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				return
			}
		} else if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(intended time.Time, seq int64) {
			defer wg.Done()
			r.doOne(ctx, rand.New(rand.NewSource(r.o.Seed+seq)), intended, r.o.ClientID)
		}(intended, n)
		n++
	}
	wg.Wait()
}

// runClosed runs o.Clients workers back-to-back until the deadline.
func (r *runner) runClosed(ctx context.Context, start time.Time) {
	deadline := start.Add(r.o.Duration)
	var wg sync.WaitGroup
	for i := 0; i < r.o.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.o.Seed + int64(i)*7919))
			id := r.o.ClientID
			if id != "" {
				id = fmt.Sprintf("%s-%d", id, i)
			}
			for time.Now().Before(deadline) && ctx.Err() == nil {
				r.doOne(ctx, rng, time.Now(), id)
			}
		}(i)
	}
	wg.Wait()
}

// doOne issues one generated request and records its outcome. intended is
// the latency epoch (the arrival the schedule planned, for the open loop).
func (r *runner) doOne(ctx context.Context, rng *rand.Rand, intended time.Time, clientID string) {
	op := r.o.Mix.pick(rng)
	method, path, body := r.genRequest(op, rng)
	r.sent.Add(1)
	pc := r.perOp[op]
	atomic.AddInt64(&pc.Sent, 1)

	req, err := http.NewRequestWithContext(ctx, method, r.o.Target+path, bytes.NewReader(body))
	if err != nil {
		r.netErr.Add(1)
		atomic.AddInt64(&pc.Err, 1)
		return
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if clientID != "" {
		req.Header.Set("X-Client-ID", clientID)
	}
	resp, err := r.o.HTTPClient.Do(req)
	lat := time.Since(intended)
	if err != nil {
		if ctx.Err() != nil {
			return // shutdown race, not a server failure
		}
		r.hist.Observe(lat)
		r.netErr.Add(1)
		atomic.AddInt64(&pc.Err, 1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	r.hist.Observe(lat)
	r.recordSlow(op, lat, resp.StatusCode, resp.Header.Get("X-Dits-Trace-Id"))
	switch {
	case resp.StatusCode < 300:
		r.ok.Add(1)
		atomic.AddInt64(&pc.OK, 1)
	case resp.StatusCode == http.StatusTooManyRequests:
		r.shed.Add(1)
		atomic.AddInt64(&pc.Shed, 1)
	case resp.StatusCode < 500:
		r.clientErr.Add(1)
		atomic.AddInt64(&pc.Err, 1)
	default:
		r.serverErr.Add(1)
		atomic.AddInt64(&pc.Err, 1)
	}
}

// genRequest builds one request of the class: clustered random points so
// queries resemble real hot-region traffic rather than uniform noise.
func (r *runner) genRequest(op Op, rng *rand.Rand) (method, path string, body []byte) {
	switch op {
	case OpCoverage:
		b, _ := json.Marshal(map[string]any{
			"points": r.genPoints(rng, r.o.PointsPerQuery),
			"k":      1 + rng.Intn(r.o.K),
			"delta":  r.o.Delta,
		})
		return http.MethodPost, "/search/coverage", b
	case OpBatch:
		qs := make([]map[string]any, r.o.BatchSize)
		for i := range qs {
			qs[i] = map[string]any{
				"points": r.genPoints(rng, r.o.PointsPerQuery),
				"k":      1 + rng.Intn(r.o.K),
			}
		}
		b, _ := json.Marshal(map[string]any{"queries": qs})
		return http.MethodPost, "/search/batch", b
	case OpIngest:
		b, _ := json.Marshal(map[string]any{
			"source": r.o.IngestSource,
			"id":     1_000_000 + rng.Intn(r.o.IngestIDs),
			"name":   "load-upsert",
			"points": r.genPoints(rng, r.o.PointsPerQuery),
		})
		return http.MethodPost, "/ingest/dataset", b
	default:
		b, _ := json.Marshal(map[string]any{
			"points": r.genPoints(rng, r.o.PointsPerQuery),
			"k":      1 + rng.Intn(r.o.K),
		})
		return http.MethodPost, "/search/overlap", b
	}
}

// genPoints draws n points clustered around a random center: a tight blob
// spanning ~2% of the world per axis.
func (r *runner) genPoints(rng *rand.Rand, n int) [][2]float64 {
	b := r.o.Bounds
	w, h := b[2]-b[0], b[3]-b[1]
	cx := b[0] + rng.Float64()*w
	cy := b[1] + rng.Float64()*h
	pts := make([][2]float64, n)
	for i := range pts {
		x := cx + (rng.Float64()-0.5)*w*0.02
		y := cy + (rng.Float64()-0.5)*h*0.02
		pts[i] = [2]float64{clamp(x, b[0], b[2]), clamp(y, b[1], b[3])}
	}
	return pts
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
