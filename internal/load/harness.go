package load

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"dits/internal/admission"
	"dits/internal/cache"
	"dits/internal/federation"
	"dits/internal/gateway"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/ingest"
	"dits/internal/transport"
	"dits/internal/workload"
)

// LocalOptions configure StartLocal's self-contained gateway: a small
// generated federation served over a real HTTP listener, so ditsload
// -selftest, ditsbench -exp load, and the CI smoke run all exercise the
// full request path without external processes.
type LocalOptions struct {
	// Sources is how many of the five paper sources to stand up (default 2).
	Sources int
	// Scale is the workload scale per source (default 0.01).
	Scale float64
	// Theta is the grid resolution (default 12).
	Theta int
	// Seed seeds the workload generator (default 1).
	Seed int64
	// Admission configures the gateway's overload protection (zero value
	// admits everything).
	Admission admission.Config
	// Mutable gives the FIRST source a durable ingest store in a temp
	// directory (removed on Close), so the ingest traffic class works.
	Mutable bool
	// CacheSize is the result-cache capacity (default 4096).
	CacheSize int
	// DisableTracing turns off the gateway's per-request tracing, so
	// benchmark harnesses can measure its overhead by difference.
	DisableTracing bool
}

// LocalGateway is a running in-process federation behind a real HTTP
// listener. Close releases everything, including the temp WAL directory.
type LocalGateway struct {
	// URL is the gateway base URL, e.g. "http://127.0.0.1:43321".
	URL string
	// IngestSource is the name of the mutable source ("" when none).
	IngestSource string
	// Gateway is the underlying gateway, for registry/admission access.
	Gateway *gateway.Gateway

	srv     *http.Server
	store   *ingest.Store
	tempDir string
}

// StartLocal builds the federation and starts serving it over HTTP on a
// loopback port.
func StartLocal(opts LocalOptions) (*LocalGateway, error) {
	if opts.Sources <= 0 {
		opts.Sources = 2
	}
	if opts.Scale <= 0 {
		opts.Scale = 0.01
	}
	if opts.Theta <= 0 {
		opts.Theta = 12
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 4096
	}
	specs := workload.Specs()
	if opts.Sources < len(specs) {
		specs = specs[:opts.Sources]
	}
	grid := geo.NewGrid(opts.Theta, geo.Rect{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90})
	center := federation.NewCenter(grid, federation.Options{
		GlobalFilter: true, ClipQuery: true, Sessions: true,
		OnSourceError: federation.SkipFailed,
	})
	center.SetCache(cache.New(opts.CacheSize))

	lg := &LocalGateway{}
	fail := func(err error) (*LocalGateway, error) {
		lg.Close()
		return nil, err
	}
	for i, spec := range specs {
		src := workload.Generate(spec, opts.Scale, opts.Seed)
		build := func() (*dits.Local, error) { return dits.Build(grid, src.Nodes(grid), 30), nil }
		var srv *federation.SourceServer
		if opts.Mutable && i == 0 {
			dir, err := os.MkdirTemp("", "ditsload-wal-")
			if err != nil {
				return fail(err)
			}
			lg.tempDir = dir
			store, err := ingest.Open(dir, ingest.Options{Fsync: ingest.FsyncNever, Bootstrap: build})
			if err != nil {
				return fail(err)
			}
			lg.store = store
			srv = federation.NewSourceServerWithGrid(src.Name, store.Index())
			srv.EnableIngest(store)
			lg.IngestSource = src.Name
		} else {
			idx, _ := build()
			srv = federation.NewSourceServerWithGrid(src.Name, idx)
		}
		peer := &transport.InProc{
			Name: src.Name, Handler: srv.Handler(), Metrics: center.Metrics,
			Codec: federation.BinaryCodec,
		}
		if _, err := center.RegisterRemote(context.Background(), peer); err != nil {
			return fail(fmt.Errorf("load: register %s: %w", src.Name, err))
		}
	}

	gw := gateway.NewWithOptions(center, gateway.Options{
		Admission:      opts.Admission,
		DisableTracing: opts.DisableTracing,
	})
	if lg.store != nil {
		lg.store.Register(gw.Registry())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	lg.Gateway = gw
	lg.URL = "http://" + ln.Addr().String()
	lg.srv = &http.Server{Handler: gw.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go lg.srv.Serve(ln)
	return lg, nil
}

// Close stops the HTTP server and releases the durable store and its temp
// directory. Safe on a partially constructed gateway.
func (lg *LocalGateway) Close() error {
	var errs []error
	if lg.srv != nil {
		errs = append(errs, lg.srv.Close())
	}
	if lg.store != nil {
		errs = append(errs, lg.store.Close())
	}
	if lg.tempDir != "" {
		errs = append(errs, os.RemoveAll(lg.tempDir))
	}
	return errors.Join(errs...)
}
