// Package load is the production load harness behind cmd/ditsload and
// ditsbench -exp load: open- and closed-loop generators driving mixed
// OJSP/CJSP/batch/ingest traffic at a gateway over real HTTP, with
// latency recorded into a bounded log-linear histogram.
//
// The open loop paces arrivals on a fixed schedule and measures each
// request from its INTENDED start time, so a stalled server inflates the
// recorded latencies instead of silently slowing the offered rate — the
// coordinated-omission correction every honest load generator needs. The
// closed loop runs N clients back-to-back and measures service time.
package load

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histSubBits is the number of linear sub-bucket bits per power of two.
// 5 bits = 32 sub-buckets, bounding the relative quantile error at ~3%.
const histSubBits = 5

// histBuckets covers int64 nanoseconds: 64 octaves of 2^histSubBits
// sub-buckets (a few KB of counters — cheap enough to keep per run).
const histBuckets = 64 << histSubBits

// Hist is a log-linear latency histogram over nanosecond durations:
// bounded memory regardless of run length, lock-free observation, ~3%
// quantile error. The zero value is ready to use.
type Hist struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// histIndex maps a nanosecond value to its bucket.
func histIndex(v int64) int {
	if v < 1 {
		v = 1
	}
	exp := bits.Len64(uint64(v)) - 1
	sub := 0
	if exp > histSubBits {
		sub = int((v >> (exp - histSubBits)) & ((1 << histSubBits) - 1))
	} else {
		// Small values: the octave has fewer than 2^histSubBits integers;
		// spread them over the low sub-buckets.
		sub = int(v & ((1 << histSubBits) - 1))
	}
	return exp<<histSubBits | sub
}

// histValue returns a representative (midpoint) value for a bucket.
func histValue(i int) int64 {
	exp := i >> histSubBits
	sub := int64(i & ((1 << histSubBits) - 1))
	if exp <= histSubBits {
		return sub
	}
	base := int64(1) << exp
	width := int64(1) << (exp - histSubBits)
	return base + sub*width + width/2
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Mean returns the mean observation as a duration (0 when empty).
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the q-quantile (0 < q <= 1) as a duration, accurate to
// the bucket width (~3% relative). Returns 0 with no observations.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			v := histValue(i)
			if m := h.max.Load(); v > m {
				v = m // never report beyond the observed max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max.Load())
}
