package load

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dits/internal/admission"
)

func TestHistQuantiles(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	// Log-linear buckets bound relative error at ~2^-histSubBits.
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
		{0.999, 999 * time.Millisecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if rel := absDiff(got, c.want); rel > 0.05 {
			t.Errorf("q%.3f = %v, want ~%v (rel err %.3f)", c.q, got, c.want, rel)
		}
	}
	if h.Max() != time.Second {
		t.Errorf("max = %v", h.Max())
	}
	if m := h.Mean(); absDiff(m, 500500*time.Microsecond) > 0.01 {
		t.Errorf("mean = %v", m)
	}
}

func absDiff(got, want time.Duration) float64 {
	d := float64(got-want) / float64(want)
	if d < 0 {
		d = -d
	}
	return d
}

func TestHistQuantileNeverExceedsMax(t *testing.T) {
	var h Hist
	h.Observe(3 * time.Millisecond)
	if got := h.Quantile(1); got > 3*time.Millisecond {
		t.Fatalf("q1.0 = %v beyond the observed max", got)
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("overlap=70, coverage=15,batch=10,ingest=5")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Overlap: 70, Coverage: 15, Batch: 10, Ingest: 5}) {
		t.Fatalf("mix = %+v", m)
	}
	for _, bad := range []string{"", "overlap=0", "walk=3", "overlap", "overlap=-1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) should fail", bad)
		}
	}
}

func TestMixPickRespectsWeights(t *testing.T) {
	m := Mix{Overlap: 1, Ingest: 1}
	rng := rand.New(rand.NewSource(7))
	counts := map[Op]int{}
	for i := 0; i < 4000; i++ {
		counts[m.pick(rng)]++
	}
	if counts[OpCoverage]+counts[OpBatch] != 0 {
		t.Fatalf("zero-weight classes drawn: %v", counts)
	}
	if counts[OpOverlap] < 1600 || counts[OpIngest] < 1600 {
		t.Fatalf("unbalanced draw: %v", counts)
	}
}

// TestClosedLoopAgainstLocalGateway drives the full stack: generated
// federation, real HTTP listener, mixed traffic including ingest upserts.
func TestClosedLoopAgainstLocalGateway(t *testing.T) {
	lg, err := StartLocal(LocalOptions{Sources: 2, Scale: 0.005, Mutable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()

	res, err := Run(context.Background(), Options{
		Target:       lg.URL,
		Mode:         "closed",
		Clients:      4,
		Duration:     400 * time.Millisecond,
		IngestSource: lg.IngestSource,
		ClientID:     "loadtest",
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.OK == 0 {
		t.Fatalf("no traffic completed: %+v", res)
	}
	if res.NetErrors+res.ServerErrors+res.ClientErrors != 0 {
		t.Fatalf("unexpected errors: %+v", res)
	}
	if res.Throughput <= 0 || res.P50Ms <= 0 || res.P99Ms < res.P50Ms {
		t.Fatalf("implausible latency stats: %+v", res)
	}
	var sent int64
	for _, c := range res.PerOp {
		sent += c.Sent
	}
	if sent != res.Sent {
		t.Fatalf("per-op sent %d != total %d", sent, res.Sent)
	}
}

// TestOpenLoopShedsUnderTightAdmission points a hot open loop at a gateway
// admitting ~10 req/s: most arrivals must come back 429 and be counted as
// shed, and the overall shed rate must show it.
func TestOpenLoopShedsUnderTightAdmission(t *testing.T) {
	lg, err := StartLocal(LocalOptions{
		Sources: 1, Scale: 0.005,
		Admission: admission.Config{Rate: 10, Burst: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()

	res, err := Run(context.Background(), Options{
		Target:   lg.URL,
		Mode:     "open",
		Rate:     200,
		Duration: 300 * time.Millisecond,
		Mix:      Mix{Overlap: 1},
		ClientID: "shedtest",
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("tight admission shed nothing: %+v", res)
	}
	if res.ShedRate <= 0.3 {
		t.Fatalf("shed rate = %.2f, want most of a 20x overload shed", res.ShedRate)
	}
	if res.OK == 0 {
		t.Fatalf("everything shed — burst should admit some: %+v", res)
	}
}

func TestRunValidatesOptions(t *testing.T) {
	cases := []Options{
		{},                           // no target
		{Target: "x", Mode: "bogus"}, // bad mode
		{Target: "x", Mode: "open"},  // open loop without rate
	}
	for i, o := range cases {
		if _, err := Run(context.Background(), o); err == nil {
			t.Errorf("case %d: Run should reject %+v", i, o)
		}
	}
}

// TestOpenLoopMeasuresFromIntendedStart pins the coordinated-omission
// correction: with a server that stalls every request far beyond the
// arrival interval, measured latency must stack queueing delay (later
// arrivals wait longer than the service time alone).
func TestOpenLoopMeasuresFromIntendedStart(t *testing.T) {
	lg, err := StartLocal(LocalOptions{
		Sources: 1, Scale: 0.005,
		Admission: admission.Config{MaxInFlight: 1}, // serialize the server
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()

	// Offered interval 5ms << service time: arrivals queue behind the
	// single in-flight slot, so p99 must exceed several intervals even
	// though each individual request is fast.
	res, err := Run(context.Background(), Options{
		Target:   lg.URL,
		Mode:     "open",
		Rate:     200,
		Duration: 250 * time.Millisecond,
		Mix:      Mix{Coverage: 1}, // the expensive class
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent < 10 {
		t.Fatalf("too few arrivals: %+v", res)
	}
	if res.P99Ms <= res.P50Ms {
		t.Fatalf("queueing must skew the tail: p50=%.2fms p99=%.2fms", res.P50Ms, res.P99Ms)
	}
}

func ExampleParseMix() {
	m, _ := ParseMix("overlap=80,ingest=20")
	fmt.Println(m.Overlap, m.Ingest)
	// Output: 80 20
}
