package metrics

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must be empty")
	}
	var v *CounterVec
	v.With("x").Inc()
	if v.Total() != 0 {
		t.Fatal("nil vec must read 0")
	}
	var hv *HistogramVec
	hv.With("x").Observe(1)
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8, 16})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%16) + 0.5) // uniform over [0.5, 15.5]
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	med := h.Quantile(0.5)
	if med < 2 || med > 12 {
		t.Fatalf("median %.2f implausible for uniform [0.5,15.5]", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 8 || p99 > 16 {
		t.Fatalf("p99 %.2f out of range", p99)
	}
	if q := h.Quantile(1); q > 16 {
		t.Fatalf("q1 %.2f beyond last bound", q)
	}
	// 6 full cycles of 0.5..15.5 (sum 128) plus 0.5+1.5+2.5+3.5.
	if math.Abs(h.Sum()-776) > 1e-6 {
		t.Fatalf("sum = %.2f, want 776", h.Sum())
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100)
	if q := h.Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile = %v, want last bound 2", q)
	}
}

func TestCounterVecConcurrent(t *testing.T) {
	var v CounterVec
	var wg sync.WaitGroup
	labels := []string{"a", "b", "c"}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.With(labels[j%len(labels)]).Inc()
			}
		}(i)
	}
	wg.Wait()
	if v.Total() != 8000 {
		t.Fatalf("total = %d, want 8000", v.Total())
	}
	snap := v.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("labels = %d, want 3", len(snap))
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(3)
	r.RegisterCounter("dits_test_total", "a test counter", &c)
	var g Gauge
	g.Set(-2)
	r.RegisterGauge("dits_test_gauge", "a test gauge", &g)
	var v CounterVec
	v.With("overlap.search").Add(5)
	v.With("coverage.round").Add(1)
	r.RegisterCounterVec("dits_test_method_total", "per method", "method", &v)
	h := NewHistogram([]float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.RegisterHistogram("dits_test_seconds", "latency", h)
	r.RegisterGaugeFunc("dits_test_fn", "from func", func() float64 { return 1.5 })

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP dits_test_total a test counter",
		"# TYPE dits_test_total counter",
		"dits_test_total 3",
		"dits_test_gauge -2",
		`dits_test_method_total{method="coverage.round"} 1`,
		`dits_test_method_total{method="overlap.search"} 5`,
		"# TYPE dits_test_seconds histogram",
		`dits_test_seconds_bucket{le="0.1"} 1`,
		`dits_test_seconds_bucket{le="1"} 2`,
		`dits_test_seconds_bucket{le="+Inf"} 3`,
		"dits_test_seconds_count 3",
		"dits_test_fn 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	hv := NewHistogramVec([]float64{1})
	hv.With("overlap").Observe(0.5)
	hv.With("batch").Observe(2)
	r.RegisterHistogramVec("dits_req_seconds", "per endpoint", "endpoint", hv)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`dits_req_seconds_bucket{endpoint="batch",le="1"} 0`,
		`dits_req_seconds_bucket{endpoint="overlap",le="1"} 1`,
		`dits_req_seconds_count{endpoint="batch"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// expectGolden compares a full exposition against a testdata golden file,
// byte for byte — the promtool-style check that bucket lines, the +Inf
// bucket, and the _sum/_count trailers appear exactly once and in order.
func expectGolden(t *testing.T, r *Registry, golden string) {
	t.Helper()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want, err := os.ReadFile(filepath.Join("testdata", golden))
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(want) {
		t.Errorf("exposition differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, sb.String(), want)
	}
}

func TestHistogramExpositionGolden(t *testing.T) {
	// Unsorted bounds with a duplicate and an explicit +Inf: the
	// constructor must sort, dedupe, and drop the +Inf so the exposition
	// carries exactly one le="+Inf" line.
	h := NewHistogram([]float64{10, 1, 0.1, 1, math.Inf(1)})
	for _, v := range []float64{0.05, 0.5, 0.8, 10, 110} {
		h.Observe(v)
	}
	r := NewRegistry()
	r.RegisterHistogram("dits_golden_seconds", "request latency", h)
	expectGolden(t, r, "histogram.golden")
}

func TestHistogramVecExpositionGolden(t *testing.T) {
	hv := NewHistogramVec([]float64{0.5, 5})
	hv.With("overlap").Observe(0.2)
	hv.With("overlap").Observe(0.3)
	hv.With("overlap").Observe(7)
	hv.With("batch").Observe(2)
	r := NewRegistry()
	r.RegisterHistogramVec("dits_golden_vec_seconds", "request latency by endpoint", "endpoint", hv)
	expectGolden(t, r, "histogram_vec.golden")
}

func TestLabelValueEscaping(t *testing.T) {
	// Text-format 0.0.4 escapes exactly backslash, double-quote, and
	// newline in label values — and nothing else: a non-ASCII value must
	// pass through verbatim (Go-style \uXXXX escaping would corrupt it).
	var v CounterVec
	v.With(`back\slash`).Inc()
	v.With(`dou"ble`).Inc()
	v.With("new\nline").Inc()
	v.With("café").Inc()
	r := NewRegistry()
	r.RegisterCounterVec("dits_esc_total", "escaping", "src", &v)
	hv := NewHistogramVec([]float64{1})
	hv.With(`a\"b`).Observe(0.5)
	r.RegisterHistogramVec("dits_esc_seconds", "escaping", "src", hv)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`dits_esc_total{src="back\\slash"} 1`,
		`dits_esc_total{src="dou\"ble"} 1`,
		`dits_esc_total{src="new\nline"} 1`,
		`dits_esc_total{src="café"} 1`,
		`dits_esc_seconds_bucket{src="a\\\"b",le="1"} 1`,
		`dits_esc_seconds_count{src="a\\\"b"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `\u`) || strings.Contains(out, `\x`) {
		t.Errorf("Go-style escapes leaked into exposition:\n%s", out)
	}
}

func TestLabelEscape(t *testing.T) {
	long := strings.Repeat("x", 500)
	if got := LabelEscape(long); len(got) != 120 {
		t.Fatalf("len = %d, want 120", len(got))
	}
	if got := LabelEscape("ok\xffname"); !strings.Contains(got, "?") {
		t.Fatalf("invalid UTF-8 not replaced: %q", got)
	}
}
