// Package metrics is the observability layer of the system: lock-free
// counter/gauge/histogram primitives, a registry that names them, and
// Prometheus text exposition (format 0.0.4) served by the gateway's
// GET /metrics and ditsserve's -metrics-addr.
//
// The primitives are designed for hot paths:
//
//   - Counter and Gauge are single atomics whose zero value is ready to
//     use, so long-lived structs (transport.Metrics, the result cache)
//     embed them directly instead of guarding plain ints with a mutex.
//   - Histogram observes into atomic bucket counters — no lock, no
//     allocation — and reports approximate quantiles by interpolating
//     within the owning bucket.
//   - The *Vec variants add one label dimension (method, source,
//     endpoint) behind an RWMutex that is only write-locked the first
//     time a label value appears.
//
// Instruments are usable unregistered; a Registry merely attaches names
// and help text for exposition. All methods are safe for concurrent use
// and safe on nil receivers (a nil instrument is a no-op sink), so
// optional metrics never need nil checks on the hot path.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The zero value is ready to
// use; all methods are nil-safe.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter (benchmark harnesses reuse instruments between
// runs; exposition never resets).
func (c *Counter) Reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Gauge is an int64 that can go up and down. The zero value is ready to
// use; all methods are nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefLatencyBuckets are the exposition buckets for request latencies, in
// seconds: log-spaced from 100µs to ~100s, covering cached sub-millisecond
// hits through shed/deadline tails.
func DefLatencyBuckets() []float64 {
	out := make([]float64, 0, 21)
	for v := 1e-4; v < 150; v *= 2 {
		out = append(out, v)
	}
	return out
}

// Histogram counts observations into fixed buckets. Create with
// NewHistogram; the nil histogram discards observations.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf last
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram creates a histogram over the given ascending bucket upper
// bounds (an implicit +Inf bucket is appended). Explicit +Inf and NaN
// bounds are dropped — +Inf is always implicit, so keeping one would emit
// a duplicate le="+Inf" series — and duplicate bounds collapse to one.
func NewHistogram(bounds []float64) *Histogram {
	b := slices.Clone(bounds)
	b = slices.DeleteFunc(b, func(v float64) bool { return math.IsInf(v, +1) || math.IsNaN(v) })
	slices.Sort(b)
	b = slices.Compact(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1) by linear
// interpolation within the owning bucket. Observations beyond the last
// bound report the last bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if float64(cum+c) >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot returns aligned (cumulative bucket counts, bounds) for
// exposition.
func (h *Histogram) snapshot() (bounds []float64, cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	var c int64
	for i := range h.counts {
		c += h.counts[i].Load()
		cum[i] = c
	}
	return h.bounds, cum, h.count.Load(), h.Sum()
}

// CounterVec is a family of Counters distinguished by one label value.
// The zero value is ready to use; all methods are nil-safe.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// With returns the counter for the label value, creating it on first use.
func (v *CounterVec) With(label string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[label]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.m == nil {
		v.m = make(map[string]*Counter)
	}
	if c = v.m[label]; c == nil {
		c = &Counter{}
		v.m[label] = c
	}
	return c
}

// Snapshot returns a copy of every label's current count.
func (v *CounterVec) Snapshot() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.m))
	for k, c := range v.m {
		out[k] = c.Value()
	}
	return out
}

// Total returns the sum over every label.
func (v *CounterVec) Total() int64 {
	var n int64
	for _, c := range v.Snapshot() {
		n += c
	}
	return n
}

// Reset drops every label series.
func (v *CounterVec) Reset() {
	if v == nil {
		return
	}
	v.mu.Lock()
	v.m = nil
	v.mu.Unlock()
}

// HistogramVec is a family of Histograms distinguished by one label
// value, sharing one set of bucket bounds.
type HistogramVec struct {
	bounds []float64
	mu     sync.RWMutex
	m      map[string]*Histogram
}

// NewHistogramVec creates a histogram family over the bucket bounds.
func NewHistogramVec(bounds []float64) *HistogramVec {
	return &HistogramVec{bounds: slices.Clone(bounds)}
}

// With returns the histogram for the label value, creating it on first
// use. Nil-safe.
func (v *HistogramVec) With(label string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.m[label]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.m == nil {
		v.m = make(map[string]*Histogram)
	}
	if h = v.m[label]; h == nil {
		h = NewHistogram(v.bounds)
		v.m[label] = h
	}
	return h
}

// family is one registered metric family: a name, help text, a type, and
// a function emitting its current series.
type family struct {
	name, help, typ string
	collect         func(w io.Writer, name string)
}

// Registry names instruments for exposition. Registration order is
// exposition order. The zero value is ready to use.
type Registry struct {
	mu   sync.Mutex
	fams []family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(f family) {
	r.mu.Lock()
	r.fams = append(r.fams, f)
	r.mu.Unlock()
}

// RegisterCounter exposes c as a counter family.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.add(family{name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, fmtFloat(float64(c.Value())))
	}})
}

// RegisterGauge exposes g as a gauge family.
func (r *Registry) RegisterGauge(name, help string, g *Gauge) {
	r.add(family{name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, fmtFloat(float64(g.Value())))
	}})
}

// RegisterCounterFunc exposes fn's value as a counter family — the bridge
// for components that keep their own monotonic counters.
func (r *Registry) RegisterCounterFunc(name, help string, fn func() float64) {
	r.add(family{name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, fmtFloat(fn()))
	}})
}

// RegisterGaugeFunc exposes fn's value as a gauge family.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() float64) {
	r.add(family{name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, fmtFloat(fn()))
	}})
}

// RegisterCounterVec exposes v as a counter family labeled by label.
func (r *Registry) RegisterCounterVec(name, help, label string, v *CounterVec) {
	r.add(family{name, help, "counter", func(w io.Writer, n string) {
		snap := v.Snapshot()
		for _, k := range sortedKeys(snap) {
			fmt.Fprintf(w, "%s{%s=%s} %s\n", n, label, quoteLabel(k), fmtFloat(float64(snap[k])))
		}
	}})
}

// RegisterHistogram exposes h as a histogram family.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.add(family{name, help, "histogram", func(w io.Writer, n string) {
		writeHistogram(w, n, "", "", h)
	}})
}

// RegisterHistogramVec exposes v as a histogram family labeled by label.
func (r *Registry) RegisterHistogramVec(name, help, label string, v *HistogramVec) {
	r.add(family{name, help, "histogram", func(w io.Writer, n string) {
		v.mu.RLock()
		keys := make([]string, 0, len(v.m))
		for k := range v.m {
			keys = append(keys, k)
		}
		v.mu.RUnlock()
		slices.Sort(keys)
		for _, k := range keys {
			writeHistogram(w, n, label, k, v.With(k))
		}
	}})
}

// WritePrometheus writes every registered family in Prometheus text
// exposition format 0.0.4, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := slices.Clone(r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		f.collect(w, f.name)
	}
}

// Handler serves WritePrometheus over HTTP — the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// writeHistogram emits one histogram series (with an optional label pair).
func writeHistogram(w io.Writer, name, label, labelVal string, h *Histogram) {
	if h == nil {
		return
	}
	bounds, cum, count, sum := h.snapshot()
	pair := ""
	sep := ""
	if label != "" {
		pair = label + "=" + quoteLabel(labelVal)
		sep = ","
	}
	for i, b := range bounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, pair, sep, fmtFloat(b), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, pair, sep, cum[len(cum)-1])
	if pair != "" {
		pair = "{" + pair + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, pair, fmtFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, pair, count)
}

// fmtFloat renders a sample value the Prometheus way: shortest exact
// representation, integers without a trailing ".0".
func fmtFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// "1e+06"-style output is valid exposition; keep it.
	return s
}

// labelEscaper applies the text-format 0.0.4 label-value escapes — and
// ONLY those: backslash, double-quote, and newline. strconv.Quote would be
// wrong here: Go escaping mangles non-ASCII and control characters into
// \uXXXX/\xXX forms Prometheus parsers take literally.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// quoteLabel renders a label value quoted and escaped per the Prometheus
// text exposition format.
func quoteLabel(s string) string {
	return `"` + labelEscaper.Replace(s) + `"`
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// LabelEscape sanitizes a dynamic label value (client IDs, source names)
// so hostile input cannot break exposition lines: quoteLabel at the emit
// sites handles text-format escaping; this trims unreasonable lengths.
func LabelEscape(s string) string {
	const maxLen = 120
	if len(s) > maxLen {
		s = s[:maxLen]
	}
	return strings.ToValidUTF8(s, "?")
}
