package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dits/internal/admission"
	"dits/internal/cache"
	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/federation"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/transport"
)

// newGuardedGateway builds a one-source in-proc federation behind a
// gateway with the given options. delay stalls every search RPC (the
// handler honors context cancellation, like a real TCP source under a
// propagated deadline).
func newGuardedGateway(t *testing.T, opts Options, delay time.Duration) *httptest.Server {
	t.Helper()
	side := float64(int64(1) << theta)
	grid := geo.NewGrid(theta, geo.Rect{MinX: 0, MinY: 0, MaxX: side, MaxY: side})
	center := federation.NewCenter(grid, federation.DefaultOptions())
	center.SetCache(cache.New(0)) // no cache: every request must hit the source

	var nodes []*dataset.Node
	for i := 0; i < 8; i++ {
		nd := dataset.NewNodeFromCells(i, fmt.Sprintf("d%d", i),
			cellset.New(geo.ZEncode(uint32(i), uint32(i))))
		nodes = append(nodes, nd)
	}
	srv := federation.NewSourceServerWithGrid("slow", dits.Build(grid, nodes, 8))
	inner := srv.Handler()
	handler := func(ctx context.Context, codec transport.Codec, method string, body []byte) (any, error) {
		if delay > 0 && (method == federation.MethodOverlap || method == federation.MethodCoverage) {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return inner(ctx, codec, method, body)
	}
	peer := &transport.InProc{Name: "slow", Handler: handler, Metrics: center.Metrics}
	if _, err := center.RegisterRemote(context.Background(), peer); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(NewWithOptions(center, opts).Handler())
	t.Cleanup(hs.Close)
	return hs
}

// searchBody is a valid overlap query against newGuardedGateway's world.
func searchBody() []byte {
	b, _ := json.Marshal(map[string]any{"points": [][2]float64{{1.5, 1.5}, {2.5, 2.5}}, "k": 3})
	return b
}

// do sends one request with an optional client ID and returns the
// response (body drained and closed).
func do(t *testing.T, method, url string, body []byte, clientID string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if clientID != "" {
		req.Header.Set("X-Client-ID", clientID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, string(data)
}

// TestAdmissionBehavior is the table-driven contract of the guarded
// endpoints: what each overload or bad input maps to on the wire.
func TestAdmissionBehavior(t *testing.T) {
	cases := []struct {
		name       string
		opts       Options
		delay      time.Duration
		run        func(t *testing.T, url string) (*http.Response, string)
		wantStatus int
		wantBody   string // substring of the response body
		check      func(t *testing.T, resp *http.Response, body string)
	}{
		{
			name: "rate limit shed returns 429 with Retry-After",
			opts: Options{Admission: admission.Config{Rate: 0.5, Burst: 1}},
			run: func(t *testing.T, url string) (*http.Response, string) {
				resp, _ := do(t, "POST", url+"/search/overlap", searchBody(), "shedder")
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("burst request = %d, want 200", resp.StatusCode)
				}
				return do(t, "POST", url+"/search/overlap", searchBody(), "shedder")
			},
			wantStatus: http.StatusTooManyRequests,
			wantBody:   "overloaded",
			check: func(t *testing.T, resp *http.Response, _ string) {
				ra := resp.Header.Get("Retry-After")
				if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
					t.Errorf("Retry-After = %q, want integer seconds >= 1", ra)
				}
			},
		},
		{
			name:  "deadline exceeded maps to 504",
			opts:  Options{Admission: admission.Config{Deadline: 50 * time.Millisecond}},
			delay: 2 * time.Second,
			run: func(t *testing.T, url string) (*http.Response, string) {
				return do(t, "POST", url+"/search/overlap", searchBody(), "")
			},
			wantStatus: http.StatusGatewayTimeout,
			wantBody:   "deadline",
		},
		{
			name: "malformed JSON is 400",
			run: func(t *testing.T, url string) (*http.Response, string) {
				return do(t, "POST", url+"/search/overlap", []byte(`{"points": [[1,`), "")
			},
			wantStatus: http.StatusBadRequest,
			wantBody:   "bad request body",
		},
		{
			name: "unknown JSON field is 400",
			run: func(t *testing.T, url string) (*http.Response, string) {
				return do(t, "POST", url+"/search/overlap", []byte(`{"points":[[1,1]],"kk":3}`), "")
			},
			wantStatus: http.StatusBadRequest,
			wantBody:   "bad request body",
		},
		{
			name: "oversized body is 413",
			run: func(t *testing.T, url string) (*http.Response, string) {
				big := append([]byte(`{"points":[`), bytes.Repeat([]byte("[1,1],"), maxBodyBytes/6+1)...)
				return do(t, "POST", url+"/search/overlap", big, "")
			},
			wantStatus: http.StatusRequestEntityTooLarge,
			wantBody:   "exceeds",
		},
		{
			name: "queue-full shed returns 429",
			opts: Options{Admission: admission.Config{MaxInFlight: 1, MaxQueue: 0}},
			// Delay long enough that the holder is still in flight when the
			// second request arrives, short enough not to drag the test.
			delay: 700 * time.Millisecond,
			run: func(t *testing.T, url string) (*http.Response, string) {
				done := make(chan struct{})
				go func() {
					defer close(done)
					req, _ := http.NewRequest("POST", url+"/search/overlap", bytes.NewReader(searchBody()))
					req.Header.Set("Content-Type", "application/json")
					req.Header.Set("X-Client-ID", "holder")
					if resp, err := http.DefaultClient.Do(req); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}()
				// The holder's request blocks in the slow source for 700ms;
				// 150ms is ample for it to occupy the only in-flight slot.
				time.Sleep(150 * time.Millisecond)
				resp, body := do(t, "POST", url+"/search/overlap", searchBody(), "second")
				<-done
				return resp, body
			},
			wantStatus: http.StatusTooManyRequests,
			wantBody:   "overloaded",
			check: func(t *testing.T, resp *http.Response, _ string) {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("queue shed must carry Retry-After")
				}
			},
		},
		{
			name: "ingest to unknown source is 404",
			run: func(t *testing.T, url string) (*http.Response, string) {
				b, _ := json.Marshal(map[string]any{"source": "nope", "id": 1, "points": [][2]float64{{1, 1}}})
				return do(t, "POST", url+"/ingest/dataset", b, "")
			},
			wantStatus: http.StatusNotFound,
			wantBody:   "unknown source",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hs := newGuardedGateway(t, tc.opts, tc.delay)
			resp, body := tc.run(t, hs.URL)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %q)", resp.StatusCode, tc.wantStatus, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
				t.Errorf("error Content-Type = %q, want JSON", ct)
			}
			if !strings.Contains(body, tc.wantBody) {
				t.Errorf("body = %q, want substring %q", body, tc.wantBody)
			}
			if tc.check != nil {
				tc.check(t, resp, body)
			}
		})
	}
}

// TestObservabilityBypassesAdmission: a fully rate-limited gateway must
// still answer /stats, /metrics, and /healthz — an overloaded server that
// cannot be inspected is an outage.
func TestObservabilityBypassesAdmission(t *testing.T) {
	hs := newGuardedGateway(t, Options{Admission: admission.Config{Rate: 0.001, Burst: 1}}, 0)
	// Exhaust the single token.
	do(t, "POST", hs.URL+"/search/overlap", searchBody(), "x")
	if resp, _ := do(t, "POST", hs.URL+"/search/overlap", searchBody(), "x"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("guarded endpoint should shed, got %d", resp.StatusCode)
	}
	for _, path := range []string{"/stats", "/metrics", "/healthz"} {
		resp, _ := do(t, "GET", hs.URL+path, nil, "x")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d during overload, want 200", path, resp.StatusCode)
		}
	}
}

// TestStatsAndMetricsExposeAdmission: sheds and deadline hits must show
// up in both the JSON stats and the Prometheus exposition.
func TestStatsAndMetricsExposeAdmission(t *testing.T) {
	hs := newGuardedGateway(t, Options{
		Admission: admission.Config{Rate: 1, Burst: 1, Deadline: 30 * time.Millisecond},
	}, 2*time.Second)

	if resp, body := do(t, "POST", hs.URL+"/search/overlap", searchBody(), "c1"); resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow search = %d (%s), want 504", resp.StatusCode, body)
	}
	if resp, _ := do(t, "POST", hs.URL+"/search/overlap", searchBody(), "c1"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatal("second request should shed")
	}

	var st StatsResponse
	if code := postGet(t, hs.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if st.Admission.Admitted != 1 || st.Admission.ShedRate != 1 || st.Admission.DeadlineExceeded != 1 {
		t.Fatalf("admission stats = %+v", st.Admission)
	}

	_, metricsBody := do(t, "GET", hs.URL+"/metrics", nil, "")
	for _, want := range []string{
		"dits_admission_admitted_total 1",
		`dits_admission_shed_total{reason="rate"} 1`,
		"dits_admission_deadline_exceeded_total 1",
		"dits_gateway_request_seconds_bucket",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// postGet GETs a JSON document.
func postGet(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}
