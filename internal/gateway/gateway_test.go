package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dits/internal/cache"
	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/federation"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/transport"
)

const theta = 7

// newTestGateway builds a two-source federation behind real TCP servers
// with pooled connections and a result cache, and fronts it with an
// httptest server.
func newTestGateway(t *testing.T) (*httptest.Server, *federation.Center, [][2]float64) {
	t.Helper()
	side := float64(int64(1) << theta)
	grid := geo.NewGrid(theta, geo.Rect{MinX: 0, MinY: 0, MaxX: side, MaxY: side})
	center := federation.NewCenter(grid, federation.DefaultOptions())
	center.SetCache(cache.New(128))

	var queryPoints [][2]float64
	rng := rand.New(rand.NewSource(3))
	for s := 0; s < 2; s++ {
		var nodes []*dataset.Node
		for i := 0; i < 50; i++ {
			var ids []uint64
			cx, cy := rng.Intn(1<<theta), rng.Intn(1<<theta)
			for j := 0; j < 1+rng.Intn(12); j++ {
				x := min(cx+rng.Intn(7), 1<<theta-1)
				y := min(cy+rng.Intn(7), 1<<theta-1)
				ids = append(ids, geo.ZEncode(uint32(x), uint32(y)))
			}
			nd := dataset.NewNodeFromCells(s*1000+i, fmt.Sprintf("s%d-%d", s, i), cellset.New(ids...))
			nodes = append(nodes, nd)
			if i < 4 {
				// Dataset cells double as query points that are known to
				// overlap federated data.
				for _, c := range nd.Cells {
					p := grid.CellCenter(c)
					queryPoints = append(queryPoints, [2]float64{p.X, p.Y})
				}
			}
		}
		srv := federation.NewSourceServerWithGrid(fmt.Sprintf("src%d", s), dits.Build(grid, nodes, 8))
		ts, err := transport.Serve("127.0.0.1:0", srv.Handler())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ts.Close() })
		pool := transport.DialPool(srv.Name, ts.Addr(), 4, center.Metrics)
		t.Cleanup(func() { pool.Close() })
		if _, err := center.RegisterRemote(context.Background(), pool); err != nil {
			t.Fatal(err)
		}
	}

	hs := httptest.NewServer(New(center).Handler())
	t.Cleanup(hs.Close)
	return hs, center, queryPoints
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestOverlapEndpoint(t *testing.T) {
	hs, _, qp := newTestGateway(t)
	req := SearchRequest{Points: qp, K: 5}
	var resp OverlapResponse
	if code := postJSON(t, hs.URL+"/search/overlap", req, &resp); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no overlap results over the federated sources")
	}
	for _, r := range resp.Results {
		if r.Source != "src0" && r.Source != "src1" {
			t.Errorf("result from unknown source %q", r.Source)
		}
		if r.Overlap <= 0 {
			t.Errorf("non-positive overlap %d", r.Overlap)
		}
	}
	// Cells form of the same query must give the same answer.
	side := float64(int64(1) << theta)
	grid := geo.NewGrid(theta, geo.Rect{MinX: 0, MinY: 0, MaxX: side, MaxY: side})
	var cells []uint64
	for _, p := range req.Points {
		cells = append(cells, grid.CellID(geo.Point{X: p[0], Y: p[1]}))
	}
	var resp2 OverlapResponse
	if code := postJSON(t, hs.URL+"/search/overlap", SearchRequest{Cells: cells, K: 5}, &resp2); code != http.StatusOK {
		t.Fatalf("cells status = %d", code)
	}
	if len(resp2.Results) != len(resp.Results) {
		t.Errorf("points and cells form disagree: %d vs %d results", len(resp.Results), len(resp2.Results))
	}
}

func TestCoverageEndpoint(t *testing.T) {
	hs, _, qp := newTestGateway(t)
	delta := 4.0
	req := SearchRequest{Points: qp[:min(8, len(qp))], K: 3, Delta: &delta}
	var resp CoverageResponse
	if code := postJSON(t, hs.URL+"/search/coverage", req, &resp); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.QueryCoverage == 0 {
		t.Fatal("query coverage is zero")
	}
	if resp.Coverage < resp.QueryCoverage {
		t.Errorf("coverage %d < query coverage %d", resp.Coverage, resp.QueryCoverage)
	}
	gain := 0
	for _, p := range resp.Picked {
		gain += p.Gain
	}
	if resp.Coverage != resp.QueryCoverage+gain {
		t.Errorf("coverage %d != query %d + gains %d", resp.Coverage, resp.QueryCoverage, gain)
	}
}

func TestValidation(t *testing.T) {
	hs, _, _ := newTestGateway(t)
	cases := []struct {
		name string
		body any
	}{
		{"empty", SearchRequest{}},
		{"both forms", SearchRequest{Points: [][2]float64{{1, 1}}, Cells: []uint64{1}}},
		{"negative k", SearchRequest{Points: [][2]float64{{1, 1}}, K: -1}},
		{"huge k", SearchRequest{Points: [][2]float64{{1, 1}}, K: 100000}},
		{"unknown field", map[string]any{"pts": [][2]float64{{1, 1}}}},
	}
	for _, tc := range cases {
		var er struct {
			Error string `json:"error"`
		}
		if code := postJSON(t, hs.URL+"/search/overlap", tc.body, &er); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, code)
		}
		if er.Error == "" {
			t.Errorf("%s: no error message", tc.name)
		}
	}
	// Wrong method.
	resp, err := http.Get(hs.URL + "/search/overlap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search/overlap = %d, want 405", resp.StatusCode)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	hs, center, qp := newTestGateway(t)
	req := SearchRequest{Points: qp[:min(6, len(qp))], K: 3}
	postJSON(t, hs.URL+"/search/overlap", req, nil)
	postJSON(t, hs.URL+"/search/overlap", req, nil) // cache hit
	postJSON(t, hs.URL+"/search/coverage", req, nil)

	var st StatsResponse
	resp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Sources != 2 {
		t.Errorf("Sources = %d, want 2", st.Sources)
	}
	if st.OverlapQueries != 2 || st.CoverageQueries != 1 {
		t.Errorf("query counters = %d/%d, want 2/1", st.OverlapQueries, st.CoverageQueries)
	}
	if st.CacheHits == 0 {
		t.Errorf("repeated query did not hit the cache: %+v", st)
	}
	if st.PeerMessages == 0 {
		t.Error("no peer traffic recorded")
	}
	if st.MembershipEpoch == 0 {
		t.Error("membership epoch not reported")
	}
	if ms, ok := st.PeerMethodStats[federation.MethodOverlap]; !ok || ms.Calls == 0 {
		t.Errorf("per-method stats missing overlap traffic: %+v", st.PeerMethodStats)
	}
	if ms, ok := st.PeerMethodStats[federation.MethodCoverageRound]; !ok || ms.Calls == 0 {
		t.Errorf("per-method stats missing session rounds: %+v", st.PeerMethodStats)
	}

	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", hresp.StatusCode)
	}
	center.Unregister("src0")
	center.Unregister("src1")
	hresp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz with no sources = %d, want 503", hresp.StatusCode)
	}
}

// TestConcurrentClients drives the full HTTP → center → pooled TCP → source
// path from many clients at once under -race.
func TestConcurrentClients(t *testing.T) {
	hs, _, qp := newTestGateway(t)
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				p := qp[(c*13+i*7)%len(qp)]
				req := SearchRequest{Points: [][2]float64{p, {p[0] + 1, p[1] + 2}}, K: 5}
				var resp OverlapResponse
				b, _ := json.Marshal(req)
				hr, err := http.Post(hs.URL+"/search/overlap", "application/json", bytes.NewReader(b))
				if err != nil {
					t.Error(err)
					return
				}
				code := hr.StatusCode
				err = json.NewDecoder(hr.Body).Decode(&resp)
				hr.Body.Close()
				if err != nil || code != http.StatusOK {
					t.Errorf("status %d err %v", code, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBatchEndpoint(t *testing.T) {
	hs, center, qp := newTestGateway(t)
	// Disable the result cache: batched and single queries share it, so
	// with it on, whichever runs second would echo the first's cached
	// answers and the parity assertion below would be vacuous.
	center.SetCache(nil)
	// Three queries: two distinct point sets and a duplicate of the first.
	half := qp[:len(qp)/2]
	req := BatchSearchRequest{Queries: []SearchRequest{
		{Points: qp, K: 5},
		{Points: half, K: 3},
		{Points: qp, K: 5},
	}}
	var resp BatchSearchResponse
	if code := postJSON(t, hs.URL+"/search/batch", req, &resp); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d result sets, want 3", len(resp.Results))
	}
	// Each entry must match the single-query endpoint's answer.
	for i, q := range req.Queries {
		var single OverlapResponse
		if code := postJSON(t, hs.URL+"/search/overlap", SearchRequest{Points: q.Points, K: q.K}, &single); code != http.StatusOK {
			t.Fatalf("single %d: status = %d", i, code)
		}
		if len(single.Results) != len(resp.Results[i]) {
			t.Fatalf("query %d: batch %d results, single %d", i, len(resp.Results[i]), len(single.Results))
		}
		for j := range single.Results {
			if single.Results[j] != resp.Results[i][j] {
				t.Fatalf("query %d result %d: batch %+v != single %+v", i, j, resp.Results[i][j], single.Results[j])
			}
		}
	}
	// Duplicate queries inside one batch agree with each other.
	for j := range resp.Results[0] {
		if resp.Results[0][j] != resp.Results[2][j] {
			t.Fatal("duplicate batch entries diverged")
		}
	}
}

func TestBatchValidation(t *testing.T) {
	hs, _, qp := newTestGateway(t)
	delta := 5.0
	many := make([]SearchRequest, maxBatchQueries+1)
	for i := range many {
		many[i] = SearchRequest{Points: qp, K: 1}
	}
	cases := []struct {
		name string
		body any
	}{
		{"no queries", BatchSearchRequest{}},
		{"oversized", BatchSearchRequest{Queries: many}},
		{"delta in batch", BatchSearchRequest{Queries: []SearchRequest{{Points: qp, Delta: &delta}}}},
		{"bad entry", BatchSearchRequest{Queries: []SearchRequest{{Points: qp}, {}}}},
		{"unknown field", map[string]any{"qs": []SearchRequest{{Points: qp}}}},
	}
	for _, tc := range cases {
		var er struct {
			Error string `json:"error"`
		}
		if code := postJSON(t, hs.URL+"/search/batch", tc.body, &er); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, code)
		}
		if er.Error == "" {
			t.Errorf("%s: no error message", tc.name)
		}
	}
}

func TestBatchStatsCounters(t *testing.T) {
	hs, _, qp := newTestGateway(t)
	req := BatchSearchRequest{Queries: []SearchRequest{{Points: qp, K: 2}, {Points: qp[:4], K: 2}}}
	if code := postJSON(t, hs.URL+"/search/batch", req, nil); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	resp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.BatchRequests != 1 || st.BatchQueries != 2 {
		t.Fatalf("batch counters = %d requests / %d queries, want 1/2", st.BatchRequests, st.BatchQueries)
	}
}
