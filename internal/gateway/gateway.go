// Package gateway exposes a federation.Center to ordinary clients over
// HTTP/JSON. It is the user-facing front of the system: clients POST a
// query as raw points (gridded under the federation's shared grid) or as
// precomputed cell IDs, and the gateway fans the search out to the
// federated sources through the center's pooled peer connections.
//
// Endpoints:
//
//	POST   /search/overlap   {"points":[[x,y],...], "k":10}
//	POST   /search/coverage  {"points":[[x,y],...], "delta":10, "k":5}
//	POST   /search/batch     {"queries":[{"points":...,"k":5}, ...]}
//	POST   /ingest/dataset   {"source":"Transit", "id":7001, "name":"...", "points":[[x,y],...]}
//	DELETE /ingest/dataset   ?source=Transit&id=7001
//	GET    /stats            gateway, cache, ingest, and transport counters
//	GET    /metrics          Prometheus text exposition of every counter
//	GET    /healthz          200 when ≥1 source is registered, else 503
//	GET    /debug/traces     most recent completed request traces (?slow=1)
//	GET    /debug/traces/{id} one trace's full span tree
//
// /search/batch executes many overlap queries as ONE federated batch:
// one search.batch exchange per candidate source instead of one
// overlap.search per query per source, with the per-query answers
// identical to the single-query endpoint's.
//
// The /ingest endpoints mutate a running source through its durable write
// path (dataset.put / dataset.delete): the mutation is WAL-logged at the
// source before it is acknowledged, and the center's result cache is
// invalidated by data version, so no subsequent search can return a
// pre-mutation answer for data the mutation touched.
//
// The gateway defends itself under load (Options.Admission): per-client
// token buckets, a bounded admission queue that sheds with 429 +
// Retry-After once full, and a per-request deadline that rides the request
// context through the federation layer onto the wire, so an abandoned
// query stops consuming source CPU. See docs/OPERATIONS.md for the
// load-shedding semantics and the /metrics name reference, and
// docs/PROTOCOL.md for the full payload specification.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"dits/internal/admission"
	"dits/internal/cache"
	"dits/internal/cellset"
	"dits/internal/federation"
	"dits/internal/geo"
	"dits/internal/metrics"
	"dits/internal/obs"
	"dits/internal/transport"
)

// maxBodyBytes caps a request body; a query of a million points is ~16 MB.
const maxBodyBytes = 32 << 20

// defaultK is used when a search request omits k.
const defaultK = 10

// defaultDelta is the connectivity threshold (in grid cells) used when a
// coverage request omits delta.
const defaultDelta = 10.0

// maxK bounds k so one request cannot ask every source for an unbounded
// result set.
const maxK = 1000

// maxBatchQueries bounds the queries of one POST /search/batch.
const maxBatchQueries = 256

// Options configure the gateway's self-protection and observability.
// The zero value admits everything, applies no deadline, and leaves the
// pprof endpoints off; /metrics is always served, and request tracing is
// on with a DefaultCapacity ring.
type Options struct {
	// Admission tunes overload protection; see admission.Config.
	Admission admission.Config
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// TraceCapacity sizes the completed-trace ring behind GET
	// /debug/traces (0 = obs.DefaultCapacity).
	TraceCapacity int
	// SlowTrace marks traces at least this long as slow queries: they
	// are kept in a dedicated ring and dumped — full span tree — as one
	// structured log record. 0 disables slow-query capture.
	SlowTrace time.Duration
	// DisableTracing turns per-request tracing off entirely (no trace
	// ring, no X-Dits-Trace-Id, no span overhead) — the knob the
	// tracing-overhead benchmark flips.
	DisableTracing bool
	// Logger receives slow-query records (nil = slog.Default()).
	Logger *slog.Logger
}

// Backend is the federation plane a gateway fronts: a single Center or a
// sharded, replicated Cluster. Both produce identical answers for the
// same corpus — the cluster's scatter/gather merges under the same total
// orders a single center ranks with.
type Backend interface {
	OverlapSearch(ctx context.Context, queryCells cellset.Set, k int) ([]federation.SourceResult, error)
	OverlapSearchBatch(ctx context.Context, queries []federation.BatchQuery) ([][]federation.SourceResult, error)
	CoverageSearch(ctx context.Context, queryCells cellset.Set, delta float64, k int) (federation.CoverageResult, error)
	PutDataset(ctx context.Context, source string, id int, name string, cells cellset.Set) (federation.MutateResult, error)
	DeleteDataset(ctx context.Context, source string, id int) (federation.MutateResult, error)
	NumSources() int
	Generation() uint64
	SourceVersions() map[string]uint64
	PeerWire() map[string]transport.WireInfo
	CacheInvalidations() int64
}

// cached is the optional Backend facet exposing a result cache; the
// cluster has none (caches live at the centers).
type cached interface {
	Cache() *cache.Cache
}

// Gateway serves the HTTP API over one federation backend.
type Gateway struct {
	backend Backend
	grid    geo.Grid
	// peerMetrics observes the backend's outbound exchanges: center→source
	// traffic in single-center mode, gateway→center in cluster mode.
	peerMetrics *transport.Metrics
	// cluster is non-nil in cluster mode and feeds the extra /stats and
	// /healthz surfaces (center health, failovers, shard owners).
	cluster *federation.Cluster
	opts    Options
	ctl     *admission.Controller
	reg     *metrics.Registry
	rec     *obs.Recorder // nil when tracing is disabled
	start   time.Time

	// latency records per-endpoint request durations in seconds, for the
	// p50/p99/p999 the load harness asserts against.
	latency *metrics.HistogramVec

	overlapQueries  atomic.Int64
	coverageQueries atomic.Int64
	batchRequests   atomic.Int64
	batchQueries    atomic.Int64
	ingestMutations atomic.Int64
	clientErrors    atomic.Int64
	serverErrors    atomic.Int64
}

// New creates a gateway over the center with zero Options.
func New(center *federation.Center) *Gateway {
	return NewWithOptions(center, Options{})
}

// NewWithOptions creates a single-center gateway with admission control
// and observability configured.
func NewWithOptions(center *federation.Center, opts Options) *Gateway {
	return newGateway(center, center.Grid, center.Metrics, nil, opts)
}

// NewCluster creates a gateway over a sharded cluster plane: queries
// scatter across the cluster's centers and merge at the gateway, and the
// cluster's health/failover counters join /stats and /healthz.
func NewCluster(cl *federation.Cluster, opts Options) *Gateway {
	return newGateway(cl, cl.Grid, cl.Metrics, cl, opts)
}

func newGateway(b Backend, grid geo.Grid, pm *transport.Metrics, cl *federation.Cluster, opts Options) *Gateway {
	g := &Gateway{
		backend:     b,
		grid:        grid,
		peerMetrics: pm,
		cluster:     cl,
		opts:        opts,
		ctl:         admission.New(opts.Admission),
		reg:         metrics.NewRegistry(),
		start:       time.Now(),
		latency:     metrics.NewHistogramVec(metrics.DefLatencyBuckets()),
	}
	if !opts.DisableTracing {
		logger := opts.Logger
		if logger == nil {
			logger = slog.Default()
		}
		g.rec = obs.NewRecorder(obs.RecorderOptions{
			Capacity:      opts.TraceCapacity,
			SlowThreshold: opts.SlowTrace,
			Logger:        logger,
		})
	}
	g.register()
	return g
}

// Recorder exposes the gateway's trace recorder (nil when tracing is
// disabled), e.g. for tests and the load harness.
func (g *Gateway) Recorder() *obs.Recorder { return g.rec }

// cache returns the backend's result cache, or a nil (fully inert) cache
// for backends without one.
func (g *Gateway) cache() *cache.Cache {
	if c, ok := g.backend.(cached); ok {
		return c.Cache()
	}
	return nil
}

// Admission exposes the gateway's admission controller, e.g. for tests and
// the stats endpoint.
func (g *Gateway) Admission() *admission.Controller { return g.ctl }

// Registry exposes the gateway's metrics registry so embedders (ditsgate,
// the soak harness) can hang extra collectors — an ingest store's WAL
// gauges, say — off the same /metrics page.
func (g *Gateway) Registry() *metrics.Registry { return g.reg }

// register wires every subsystem's counters into the /metrics exposition.
func (g *Gateway) register() {
	gw := func(name, help string, v *atomic.Int64) {
		g.reg.RegisterCounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	gw("dits_gateway_overlap_queries_total", "POST /search/overlap requests accepted", &g.overlapQueries)
	gw("dits_gateway_coverage_queries_total", "POST /search/coverage requests accepted", &g.coverageQueries)
	gw("dits_gateway_batch_requests_total", "POST /search/batch requests accepted", &g.batchRequests)
	gw("dits_gateway_batch_queries_total", "Queries inside accepted batch requests", &g.batchQueries)
	gw("dits_gateway_ingest_mutations_total", "Acknowledged ingest mutations", &g.ingestMutations)
	gw("dits_gateway_client_errors_total", "Requests rejected as client errors (4xx)", &g.clientErrors)
	gw("dits_gateway_server_errors_total", "Requests failed as server errors (5xx)", &g.serverErrors)
	g.reg.RegisterGaugeFunc("dits_gateway_sources", "Registered federation sources",
		func() float64 { return float64(g.backend.NumSources()) })
	g.reg.RegisterCounterFunc("dits_cache_invalidations_total",
		"Cache-invalidation events (mutations + membership changes)",
		func() float64 { return float64(g.backend.CacheInvalidations()) })
	g.reg.RegisterHistogramVec("dits_gateway_request_seconds",
		"Request latency by endpoint", "endpoint", g.latency)
	g.peerMetrics.Register(g.reg)
	g.cache().Register(g.reg)
	g.ctl.Register(g.reg)
	if g.rec != nil {
		g.rec.Register(g.reg)
	}
	if g.cluster != nil {
		g.reg.RegisterGaugeFunc("dits_cluster_centers_healthy", "Healthy federation centers",
			func() float64 { return float64(g.cluster.Stats().Healthy) })
		g.reg.RegisterCounterFunc("dits_cluster_failovers_total", "Centers marked down and re-homed",
			func() float64 { return float64(g.cluster.Stats().Failovers) })
		g.reg.RegisterCounterFunc("dits_cluster_rehomed_total", "Sources re-registered by failovers",
			func() float64 { return float64(g.cluster.Stats().Rehomed) })
	}
}

// observe records one request's latency under its endpoint label.
func (g *Gateway) observe(endpoint string, start time.Time) {
	g.latency.With(endpoint).Observe(time.Since(start).Seconds())
}

// statusWriter captures the response status so the trace root records
// whether the request failed.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// traced starts one trace per request: a fresh trace ID (echoed in the
// X-Dits-Trace-Id response header), a root span named for the endpoint,
// and — when the request finishes — a completed-trace record in the ring
// behind GET /debug/traces. Error statuses mark the root span failed.
func (g *Gateway) traced(root string, next http.Handler) http.Handler {
	if g.rec == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace()
		ctx, sp := obs.StartSpan(obs.WithTrace(r.Context(), tr), root)
		w.Header().Set("X-Dits-Trace-Id", tr.ID().String())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		var err error
		if sw.status >= 400 {
			err = fmt.Errorf("HTTP %d", sw.status)
		}
		sp.EndErr(err)
		g.rec.Finish(tr, sp)
	})
}

// traceID returns the request's trace ID in hex ("" when untraced) — the
// exemplar stitched into 5xx error bodies so an operator can jump from a
// failed response straight to its span tree in /debug/traces.
func traceID(r *http.Request) string {
	if tr := obs.TraceFrom(r.Context()); tr != nil {
		return tr.ID().String()
	}
	return ""
}

// Handler returns the gateway's HTTP handler. The query and mutation
// endpoints sit behind the admission middleware; the observability
// endpoints (/stats, /metrics, /healthz, pprof) bypass it so an overloaded
// gateway can still be inspected.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	// The trace wrapper sits OUTSIDE admission so the admission.wait span
	// (token check + queue time) lands inside the request's trace.
	guard := func(root string, h http.HandlerFunc) http.Handler {
		return g.traced(root, g.ctl.Middleware(h))
	}
	mux.Handle("POST /search/overlap", guard("http.overlap", g.handleOverlap))
	mux.Handle("POST /search/coverage", guard("http.coverage", g.handleCoverage))
	mux.Handle("POST /search/batch", guard("http.batch", g.handleBatch))
	mux.Handle("POST /ingest/dataset", guard("http.ingest.put", g.handleIngestPut))
	mux.Handle("DELETE /ingest/dataset", guard("http.ingest.delete", g.handleIngestDelete))
	mux.HandleFunc("GET /stats", g.handleStats)
	mux.Handle("GET /metrics", g.reg.Handler())
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	if g.rec != nil {
		h := g.rec.DebugHandler()
		mux.Handle("GET /debug/traces", h)
		mux.Handle("GET /debug/traces/", h)
	}
	if g.opts.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// SearchRequest is the body of both search endpoints. Exactly one of
// Points and Cells must be non-empty: Points are raw coordinates gridded
// under the federation's shared grid; Cells are precomputed z-order cell
// IDs for clients that grid locally.
type SearchRequest struct {
	Points [][2]float64 `json:"points,omitempty"`
	Cells  []uint64     `json:"cells,omitempty"`
	K      int          `json:"k,omitempty"`
	Delta  *float64     `json:"delta,omitempty"` // coverage only; default 10
}

// OverlapResult is one ranked dataset in an overlap response.
type OverlapResult struct {
	Source  string `json:"source"`
	ID      int    `json:"id"`
	Name    string `json:"name"`
	Overlap int    `json:"overlap"`
}

// OverlapResponse is the body of a successful POST /search/overlap.
type OverlapResponse struct {
	Results []OverlapResult `json:"results"`
	TookMs  float64         `json:"tookMs"`
}

// CoveragePick is one greedily picked dataset in a coverage response.
type CoveragePick struct {
	Source string `json:"source"`
	ID     int    `json:"id"`
	Name   string `json:"name"`
	Gain   int    `json:"gain"`
}

// CoverageResponse is the body of a successful POST /search/coverage.
type CoverageResponse struct {
	Picked        []CoveragePick `json:"picked"`
	Coverage      int            `json:"coverage"`
	QueryCoverage int            `json:"queryCoverage"`
	TookMs        float64        `json:"tookMs"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	Sources         int     `json:"sources"`
	UptimeSeconds   float64 `json:"uptimeSeconds"`
	OverlapQueries  int64   `json:"overlapQueries"`
	CoverageQueries int64   `json:"coverageQueries"`
	BatchRequests   int64   `json:"batchRequests"`
	BatchQueries    int64   `json:"batchQueries"`
	IngestMutations int64   `json:"ingestMutations"`
	ClientErrors    int64   `json:"clientErrors"`
	ServerErrors    int64   `json:"serverErrors"`

	CacheHits      int64   `json:"cacheHits"`
	CacheMisses    int64   `json:"cacheMisses"`
	CacheHitRate   float64 `json:"cacheHitRate"`
	CacheEntries   int     `json:"cacheEntries"`
	CacheCapacity  int     `json:"cacheCapacity"`
	PeerMessages   int64   `json:"peerMessages"`
	PeerBytesSent  int64   `json:"peerBytesSent"`
	PeerBytesRecvd int64   `json:"peerBytesReceived"`

	// MembershipEpoch identifies the current membership generation; it
	// increments whenever a source registers or unregisters.
	MembershipEpoch uint64 `json:"membershipEpoch"`
	// PeerMethodStats breaks the transport counters down per federation
	// protocol method (request/response bytes and call counts).
	PeerMethodStats map[string]transport.MethodStats `json:"peerMethodStats,omitempty"`
	// SourceFailures counts failed exchanges per source, populated when
	// the center runs the skip-and-record failure policy.
	SourceFailures map[string]int64 `json:"sourceFailures,omitempty"`
	// PeerWire reports, per source, the wire parameters the connection
	// negotiated (codec name and compression) — the surface to watch
	// during a mixed-codec rolling upgrade.
	PeerWire map[string]transport.WireInfo `json:"peerWire,omitempty"`
	// PeerCompressRawBytes/PeerCompressWireBytes total payload bytes
	// before and after compression framing on compression-negotiated
	// connections; PeerCompressedMessages counts payloads that actually
	// shipped gzipped.
	PeerCompressRawBytes   int64 `json:"peerCompressRawBytes"`
	PeerCompressWireBytes  int64 `json:"peerCompressWireBytes"`
	PeerCompressedMessages int64 `json:"peerCompressedMessages"`

	// CacheInvalidations counts cache-invalidation events — one per
	// applied dataset mutation, one per membership epoch change.
	CacheInvalidations int64 `json:"cacheInvalidations"`
	// SourceVersions is the center's data-version vector: the version of
	// every source mutated through this center. Cached results are keyed
	// by these versions, so the vector tells exactly which data any
	// cached answer can be built from.
	SourceVersions map[string]uint64 `json:"sourceVersions,omitempty"`

	// Admission reports the overload-protection counters: admitted and
	// shed requests, deadline hits, and the live in-flight/queued levels.
	Admission admission.Stats `json:"admission"`

	// Cluster reports the sharded plane's health and failover counters;
	// absent in single-center mode.
	Cluster *federation.ClusterStats `json:"cluster,omitempty"`
}

// errorResponse is the body of every non-2xx response. TraceID is set on
// 5xx/504 responses as an exemplar pointing into GET /debug/traces/{id}.
type errorResponse struct {
	Error   string `json:"error"`
	TraceID string `json:"traceId,omitempty"`
}

func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (g *Gateway) badRequest(w http.ResponseWriter, format string, args ...any) {
	g.clientErrors.Add(1)
	g.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeError maps a body-decoding failure: an oversized body is 413 (the
// client must not retry the same payload), anything else malformed is 400.
func (g *Gateway) decodeError(w http.ResponseWriter, err error) {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		g.clientErrors.Add(1)
		g.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit),
		})
		return
	}
	g.badRequest(w, "bad request body: %v", err)
}

// writeSearchError maps a federated search failure onto HTTP: a query that
// ran out of its admission deadline is 504 (the gateway gave up, not the
// federation), everything else is 502. The deadline may surface directly
// (context.DeadlineExceeded) or laundered through the wire as a remote or
// I/O-timeout error string — so an expired request context is checked
// too; it is authoritative for "whose fault was this".
func (g *Gateway) writeSearchError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(r.Context().Err(), context.DeadlineExceeded) {
		g.ctl.RecordDeadlineExceeded()
		g.serverErrors.Add(1)
		g.writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error(), TraceID: traceID(r)})
		return
	}
	g.serverErrors.Add(1)
	g.writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error(), TraceID: traceID(r)})
}

// gridInput validates and grids a points-or-cells payload — shared by
// the search endpoints and the ingest upsert, so query data and ingested
// data are always gridded identically. The returned error text is safe
// to surface to clients.
func (g *Gateway) gridInput(points [][2]float64, cellIDs []uint64) (cellset.Set, error) {
	if len(points) == 0 && len(cellIDs) == 0 {
		return nil, fmt.Errorf("request must set points or cells")
	}
	if len(points) > 0 && len(cellIDs) > 0 {
		return nil, fmt.Errorf("request must set points or cells, not both")
	}
	var cells cellset.Set
	if len(cellIDs) > 0 {
		cells = cellset.New(cellIDs...)
	} else {
		pts := make([]geo.Point, len(points))
		for i, p := range points {
			pts[i] = geo.Point{X: p[0], Y: p[1]}
		}
		cells = cellset.FromPoints(g.grid, pts)
	}
	if cells.IsEmpty() {
		return nil, fmt.Errorf("input gridded to zero cells")
	}
	return cells, nil
}

// validateQuery validates one search request and grids it to query cells.
// It mutates req to apply the k default. The returned error text is safe
// to surface to clients.
func (g *Gateway) validateQuery(req *SearchRequest) (cellset.Set, error) {
	if req.K == 0 {
		req.K = defaultK
	}
	if req.K < 0 || req.K > maxK {
		return nil, fmt.Errorf("k must be in [1, %d], got %d", maxK, req.K)
	}
	if req.Delta != nil && (*req.Delta < 0 || *req.Delta != *req.Delta) {
		return nil, fmt.Errorf("delta must be a non-negative number")
	}
	return g.gridInput(req.Points, req.Cells)
}

// decodeQuery parses and validates a search request into query cells.
func (g *Gateway) decodeQuery(w http.ResponseWriter, r *http.Request) (cellset.Set, SearchRequest, bool) {
	var req SearchRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		g.decodeError(w, err)
		return nil, req, false
	}
	cells, err := g.validateQuery(&req)
	if err != nil {
		g.badRequest(w, "%v", err)
		return nil, req, false
	}
	return cells, req, true
}

func (g *Gateway) handleOverlap(w http.ResponseWriter, r *http.Request) {
	cells, req, ok := g.decodeQuery(w, r)
	if !ok {
		return
	}
	g.overlapQueries.Add(1)
	start := time.Now()
	defer g.observe("overlap", start)
	rs, err := g.backend.OverlapSearch(r.Context(), cells, req.K)
	if err != nil {
		g.writeSearchError(w, r, err)
		return
	}
	resp := OverlapResponse{
		Results: make([]OverlapResult, len(rs)),
		TookMs:  float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, res := range rs {
		resp.Results[i] = OverlapResult{Source: res.Source, ID: res.ID, Name: res.Name, Overlap: res.Overlap}
	}
	g.writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleCoverage(w http.ResponseWriter, r *http.Request) {
	cells, req, ok := g.decodeQuery(w, r)
	if !ok {
		return
	}
	delta := defaultDelta
	if req.Delta != nil {
		delta = *req.Delta
	}
	g.coverageQueries.Add(1)
	start := time.Now()
	defer g.observe("coverage", start)
	res, err := g.backend.CoverageSearch(r.Context(), cells, delta, req.K)
	if err != nil {
		g.writeSearchError(w, r, err)
		return
	}
	resp := CoverageResponse{
		Picked:        make([]CoveragePick, len(res.Picked)),
		Coverage:      res.Coverage,
		QueryCoverage: res.QueryCoverage,
		TookMs:        float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, p := range res.Picked {
		resp.Picked[i] = CoveragePick{Source: p.Source, ID: p.ID, Name: p.Name, Gain: p.Overlap}
	}
	g.writeJSON(w, http.StatusOK, resp)
}

// BatchSearchRequest is the body of POST /search/batch: up to
// maxBatchQueries overlap queries, each validated like a single
// /search/overlap body (delta is rejected — a batch is overlap-only).
type BatchSearchRequest struct {
	Queries []SearchRequest `json:"queries"`
}

// BatchSearchResponse answers a batch: Results[i] holds query i's ranked
// datasets, exactly what /search/overlap would have returned for it.
type BatchSearchResponse struct {
	Results [][]OverlapResult `json:"results"`
	TookMs  float64           `json:"tookMs"`
}

func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSearchRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		g.decodeError(w, err)
		return
	}
	if len(req.Queries) == 0 {
		g.badRequest(w, "batch must contain at least one query")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		g.badRequest(w, "batch holds %d queries, max %d", len(req.Queries), maxBatchQueries)
		return
	}
	batch := make([]federation.BatchQuery, len(req.Queries))
	for i := range req.Queries {
		if req.Queries[i].Delta != nil {
			g.badRequest(w, "query %d: batch queries are overlap-only and must not set delta", i)
			return
		}
		cells, err := g.validateQuery(&req.Queries[i])
		if err != nil {
			g.badRequest(w, "query %d: %v", i, err)
			return
		}
		batch[i] = federation.BatchQuery{Cells: cells, K: req.Queries[i].K}
	}
	g.batchRequests.Add(1)
	g.batchQueries.Add(int64(len(batch)))
	start := time.Now()
	defer g.observe("batch", start)
	outs, err := g.backend.OverlapSearchBatch(r.Context(), batch)
	if err != nil {
		g.writeSearchError(w, r, err)
		return
	}
	resp := BatchSearchResponse{
		Results: make([][]OverlapResult, len(outs)),
		TookMs:  float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, rs := range outs {
		resp.Results[i] = make([]OverlapResult, len(rs))
		for j, res := range rs {
			resp.Results[i][j] = OverlapResult{Source: res.Source, ID: res.ID, Name: res.Name, Overlap: res.Overlap}
		}
	}
	g.writeJSON(w, http.StatusOK, resp)
}

// IngestRequest is the body of POST /ingest/dataset: the target source,
// the dataset ID (upsert: insert when new, replace when it exists), and
// the data as raw points (gridded under the federation's shared grid) or
// precomputed cell IDs — exactly one of the two.
type IngestRequest struct {
	Source string       `json:"source"`
	ID     int          `json:"id"`
	Name   string       `json:"name,omitempty"`
	Points [][2]float64 `json:"points,omitempty"`
	Cells  []uint64     `json:"cells,omitempty"`
}

// IngestResponse answers both ingest endpoints. Version is the source's
// data version after the mutation; every cached search answer the
// mutation could affect is invalidated before the response is sent.
type IngestResponse struct {
	Source      string  `json:"source"`
	ID          int     `json:"id"`
	Found       bool    `json:"found"`
	Version     uint64  `json:"version"`
	NumDatasets int     `json:"numDatasets"`
	TookMs      float64 `json:"tookMs"`
}

func (g *Gateway) handleIngestPut(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		g.decodeError(w, err)
		return
	}
	if req.Source == "" {
		g.badRequest(w, "request must set source")
		return
	}
	cells, err := g.gridInput(req.Points, req.Cells)
	if err != nil {
		g.badRequest(w, "%v", err)
		return
	}
	start := time.Now()
	defer g.observe("ingest", start)
	res, err := g.backend.PutDataset(r.Context(), req.Source, req.ID, req.Name, cells)
	if err != nil {
		g.writeMutationError(w, r, err)
		return
	}
	g.ingestMutations.Add(1)
	g.writeJSON(w, http.StatusOK, IngestResponse{
		Source: res.Source, ID: res.ID, Found: res.Found,
		Version: res.Version, NumDatasets: res.NumDatasets,
		TookMs: float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (g *Gateway) handleIngestDelete(w http.ResponseWriter, r *http.Request) {
	source := r.URL.Query().Get("source")
	idStr := r.URL.Query().Get("id")
	if source == "" || idStr == "" {
		g.badRequest(w, "query parameters source and id are required")
		return
	}
	id, err := strconv.Atoi(idStr)
	if err != nil {
		g.badRequest(w, "bad id %q: %v", idStr, err)
		return
	}
	start := time.Now()
	defer g.observe("ingest", start)
	res, err := g.backend.DeleteDataset(r.Context(), source, id)
	if err != nil {
		g.writeMutationError(w, r, err)
		return
	}
	if !res.Found {
		g.clientErrors.Add(1)
		g.writeJSON(w, http.StatusNotFound, errorResponse{
			Error: fmt.Sprintf("source %s holds no dataset %d", source, id),
		})
		return
	}
	g.ingestMutations.Add(1)
	g.writeJSON(w, http.StatusOK, IngestResponse{
		Source: res.Source, ID: res.ID, Found: true,
		Version: res.Version, NumDatasets: res.NumDatasets,
		TookMs: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// writeMutationError maps a center mutation failure onto HTTP: an unknown
// source name is the client's mistake (404), a deadline overrun is 504,
// everything else is a federation failure (502).
func (g *Gateway) writeMutationError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, federation.ErrUnknownSource) {
		g.clientErrors.Add(1)
		g.writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	g.writeSearchError(w, r, err)
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	st := g.cache().Stats()
	resp := StatsResponse{
		Sources:         g.backend.NumSources(),
		UptimeSeconds:   time.Since(g.start).Seconds(),
		OverlapQueries:  g.overlapQueries.Load(),
		CoverageQueries: g.coverageQueries.Load(),
		BatchRequests:   g.batchRequests.Load(),
		BatchQueries:    g.batchQueries.Load(),
		IngestMutations: g.ingestMutations.Load(),
		ClientErrors:    g.clientErrors.Load(),
		ServerErrors:    g.serverErrors.Load(),
		CacheHits:       st.Hits,
		CacheMisses:     st.Misses,
		CacheHitRate:    st.HitRate(),
		CacheEntries:    st.Len,
		CacheCapacity:   st.Capacity,
		PeerMessages:    g.peerMetrics.Messages(),
		PeerBytesSent:   g.peerMetrics.BytesSent(),
		PeerBytesRecvd:  g.peerMetrics.BytesReceived(),
		MembershipEpoch: g.backend.Generation(),
		PeerMethodStats: g.peerMetrics.PerMethod(),
		SourceFailures:  g.peerMetrics.Failures(),
		PeerWire:        g.backend.PeerWire(),

		PeerCompressedMessages: g.peerMetrics.CompressedMessages(),

		CacheInvalidations: g.backend.CacheInvalidations(),
		SourceVersions:     g.backend.SourceVersions(),
		Admission:          g.ctl.Stats(),
	}
	resp.PeerCompressRawBytes, resp.PeerCompressWireBytes = g.peerMetrics.CompressionBytes()
	if g.cluster != nil {
		cst := g.cluster.Stats()
		resp.Cluster = &cst
	}
	g.writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	n := g.backend.NumSources()
	status := http.StatusOK
	state := "ok"
	if n == 0 {
		status = http.StatusServiceUnavailable
		state = "no sources"
	}
	body := map[string]any{"status": state, "sources": n}
	if g.cluster != nil {
		cst := g.cluster.Stats()
		body["centers"] = cst.Centers
		body["healthyCenters"] = cst.Healthy
		if cst.Healthy == 0 {
			status = http.StatusServiceUnavailable
			body["status"] = "no healthy centers"
		}
	}
	g.writeJSON(w, status, body)
}
