package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"dits/internal/cache"
	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/federation"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/ingest"
	"dits/internal/transport"
)

// newMutableGateway builds a two-source federation whose sources run
// durable ingest stores, served over real TCP behind an httptest gateway.
func newMutableGateway(t *testing.T) (*httptest.Server, []uint64) {
	t.Helper()
	side := float64(int64(1) << theta)
	grid := geo.NewGrid(theta, geo.Rect{MinX: 0, MinY: 0, MaxX: side, MaxY: side})
	center := federation.NewCenter(grid, federation.DefaultOptions())
	center.SetCache(cache.New(128))

	var queryCells []uint64
	rng := rand.New(rand.NewSource(5))
	for s := 0; s < 2; s++ {
		var nodes []*dataset.Node
		for i := 0; i < 40; i++ {
			var ids []uint64
			cx, cy := rng.Intn(1<<theta), rng.Intn(1<<theta)
			for j := 0; j < 1+rng.Intn(12); j++ {
				x := min(cx+rng.Intn(7), 1<<theta-1)
				y := min(cy+rng.Intn(7), 1<<theta-1)
				ids = append(ids, geo.ZEncode(uint32(x), uint32(y)))
			}
			nd := dataset.NewNodeFromCells(s*1000+i, fmt.Sprintf("s%d-%d", s, i), cellset.New(ids...))
			nodes = append(nodes, nd)
			if s == 0 && i < 3 {
				queryCells = append(queryCells, nd.Cells...)
			}
		}
		idx := dits.Build(grid, nodes, 8)
		st, err := ingest.Open(t.TempDir(), ingest.Options{
			Fsync:         ingest.FsyncNever,
			SnapshotEvery: -1,
			Bootstrap:     func() (*dits.Local, error) { return idx, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		srv := federation.NewSourceServerWithGrid(fmt.Sprintf("src%d", s), idx)
		srv.EnableIngest(st)
		ts, err := transport.Serve("127.0.0.1:0", srv.Handler())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ts.Close() })
		pool := transport.DialPool(srv.Name, ts.Addr(), 4, center.Metrics)
		t.Cleanup(func() { pool.Close() })
		if _, err := center.RegisterRemote(context.Background(), pool); err != nil {
			t.Fatal(err)
		}
	}
	hs := httptest.NewServer(New(center).Handler())
	t.Cleanup(hs.Close)
	return hs, cellset.New(queryCells...)
}

func doDelete(t *testing.T, url string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func getStats(t *testing.T, base string) StatsResponse {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestIngestEndToEndNoStaleCache is the acceptance check: the gateway
// serves no stale cached result after a mutation applied through
// POST /ingest/dataset.
func TestIngestEndToEndNoStaleCache(t *testing.T) {
	hs, queryCells := newMutableGateway(t)
	search := func() OverlapResponse {
		var out OverlapResponse
		if code := postJSON(t, hs.URL+"/search/overlap", SearchRequest{Cells: queryCells, K: 5}, &out); code != http.StatusOK {
			t.Fatalf("search status %d", code)
		}
		return out
	}

	before := search()
	if len(before.Results) == 0 {
		t.Fatal("seed query returned nothing")
	}
	// Second identical query must come from the cache.
	search()
	if st := getStats(t, hs.URL); st.CacheHits == 0 {
		t.Fatalf("expected a cache hit, stats = %+v", st)
	}

	// Mutate through the gateway: a dataset covering the query exactly.
	var put IngestResponse
	if code := postJSON(t, hs.URL+"/ingest/dataset",
		IngestRequest{Source: "src0", ID: 424242, Name: "hot", Cells: queryCells}, &put); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	if !put.Found || put.Version == 0 {
		t.Fatalf("put response = %+v", put)
	}

	after := search()
	if len(after.Results) == 0 || after.Results[0].ID != 424242 {
		t.Fatalf("stale cache: post-mutation top result = %+v", after.Results)
	}
	if after.Results[0].Overlap != len(queryCells) {
		t.Fatalf("inserted dataset overlap = %d, want %d", after.Results[0].Overlap, len(queryCells))
	}

	// Delete restores the original ranking, again bypassing stale entries.
	var del IngestResponse
	if code := doDelete(t, hs.URL+"/ingest/dataset?source=src0&id=424242", &del); code != http.StatusOK {
		t.Fatalf("delete status %d", code)
	}
	restored := search()
	if !reflect.DeepEqual(before.Results, restored.Results) {
		t.Fatalf("results after insert+delete differ:\n  %v\n  %v", before.Results, restored.Results)
	}

	// The batch endpoint shares the same versioned cache entries.
	var batch BatchSearchResponse
	if code := postJSON(t, hs.URL+"/search/batch",
		BatchSearchRequest{Queries: []SearchRequest{{Cells: queryCells, K: 5}}}, &batch); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if !reflect.DeepEqual(batch.Results[0], restored.Results) {
		t.Fatalf("batch answer diverges from single-query answer")
	}

	st := getStats(t, hs.URL)
	if st.IngestMutations != 2 {
		t.Fatalf("ingestMutations = %d, want 2", st.IngestMutations)
	}
	if st.CacheInvalidations < 2 {
		t.Fatalf("cacheInvalidations = %d, want >= 2", st.CacheInvalidations)
	}
	if st.SourceVersions["src0"] != put.Version+1 {
		t.Fatalf("sourceVersions = %v, want src0 at %d", st.SourceVersions, put.Version+1)
	}
}

func TestIngestValidation(t *testing.T) {
	hs, queryCells := newMutableGateway(t)
	cases := []struct {
		name string
		req  IngestRequest
		code int
	}{
		{"no source", IngestRequest{ID: 1, Cells: queryCells}, http.StatusBadRequest},
		{"no data", IngestRequest{Source: "src0", ID: 1}, http.StatusBadRequest},
		{"both", IngestRequest{Source: "src0", ID: 1, Cells: queryCells, Points: [][2]float64{{1, 1}}}, http.StatusBadRequest},
		{"unknown source", IngestRequest{Source: "elsewhere", ID: 1, Cells: queryCells}, http.StatusNotFound},
	}
	for _, tc := range cases {
		if code := postJSON(t, hs.URL+"/ingest/dataset", tc.req, nil); code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.code)
		}
	}
	if code := doDelete(t, hs.URL+"/ingest/dataset?source=src0&id=99999999", nil); code != http.StatusNotFound {
		t.Errorf("delete missing dataset: status %d, want 404", code)
	}
	if code := doDelete(t, hs.URL+"/ingest/dataset?source=src0", nil); code != http.StatusBadRequest {
		t.Errorf("delete without id: status %d, want 400", code)
	}
	// Points are gridded under the shared grid, like search queries.
	var put IngestResponse
	if code := postJSON(t, hs.URL+"/ingest/dataset",
		IngestRequest{Source: "src1", ID: 7, Name: "pts", Points: [][2]float64{{3.5, 3.5}, {4.5, 4.5}}}, &put); code != http.StatusOK {
		t.Fatalf("points put status %d", code)
	}
	if put.Version == 0 {
		t.Fatalf("points put response = %+v", put)
	}
}
