package gateway

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"dits/internal/obs"
)

func BenchmarkTracedMiddleware(b *testing.B) {
	g := &Gateway{rec: obs.NewRecorder(obs.RecorderOptions{})}
	h := g.traced("http.overlap", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sp := obs.StartSpan(r.Context(), "admission.wait")
		sp.End()
		_, sp = obs.StartSpan(r.Context(), "cache.probe")
		sp.End()
		w.WriteHeader(200)
	}))
	req := httptest.NewRequest("POST", "/search/overlap", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
	}
}
