package admission

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTokenBucketRateLimit(t *testing.T) {
	c := New(Config{Rate: 10, Burst: 3})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if _, _, ok := c.Admit(context.Background(), "a"); !ok {
			t.Fatalf("burst request %d shed", i)
		}
	}
	_, retry, ok := c.Admit(context.Background(), "a")
	if ok {
		t.Fatal("4th back-to-back request should be shed")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want ~1/rate", retry)
	}
	// A different client has its own bucket.
	if _, _, ok := c.Admit(context.Background(), "b"); !ok {
		t.Fatal("client b should have a fresh bucket")
	}
	// After 100ms one token refills for client a.
	now = now.Add(100 * time.Millisecond)
	if _, _, ok := c.Admit(context.Background(), "a"); !ok {
		t.Fatal("token did not refill")
	}
	st := c.Stats()
	if st.ShedRate != 1 || st.Admitted != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueBoundsAndShedding(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 1})

	rel1, _, ok := c.Admit(context.Background(), "x")
	if !ok {
		t.Fatal("first request must be admitted")
	}
	// Second request queues; run it in a goroutine.
	admitted := make(chan func(), 1)
	go func() {
		rel, _, ok := c.Admit(context.Background(), "x")
		if ok {
			admitted <- rel
		}
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 1 })

	// Third request: queue full, shed immediately.
	_, retry, ok := c.Admit(context.Background(), "x")
	if ok {
		t.Fatal("third request should be shed, queue is full")
	}
	if retry < time.Second {
		t.Fatalf("retryAfter = %v", retry)
	}
	if st := c.Stats(); st.ShedQueue != 1 {
		t.Fatalf("shedQueue = %d", st.ShedQueue)
	}

	rel1() // frees the slot; the queued request proceeds
	select {
	case rel := <-admitted:
		rel()
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never admitted")
	}
	if st := c.Stats(); st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

func TestQueueWaitHonorsContext(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 4})
	rel, _, ok := c.Admit(context.Background(), "x")
	if !ok {
		t.Fatal("first request must be admitted")
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, ok := c.Admit(ctx, "x"); ok {
		t.Fatal("queued request should give up with its context")
	}
}

func TestMiddlewareShedsWith429(t *testing.T) {
	c := New(Config{Rate: 1, Burst: 1})
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	req := httptest.NewRequest("POST", "/search/overlap", nil)
	req.Header.Set("X-Client-ID", "tester")

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("first request = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Fatalf("shed body = %q", rec.Body.String())
	}
}

func TestMiddlewareAppliesDeadline(t *testing.T) {
	c := New(Config{Deadline: 250 * time.Millisecond})
	var sawDeadline bool
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sawDeadline = r.Context().Deadline()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/stats", nil))
	if !sawDeadline {
		t.Fatal("handler context has no deadline")
	}
}

func TestZeroConfigAdmitsEverything(t *testing.T) {
	c := New(Config{})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, _, ok := c.Admit(context.Background(), "any")
			if !ok {
				t.Error("zero config must admit")
				return
			}
			rel()
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Admitted != 32 || st.ShedRate+st.ShedQueue != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientID(t *testing.T) {
	r := httptest.NewRequest("GET", "/", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if got := ClientID(r); got != "10.1.2.3" {
		t.Fatalf("ClientID = %q", got)
	}
	r.Header.Set("X-Client-ID", "svc-7")
	if got := ClientID(r); got != "svc-7" {
		t.Fatalf("ClientID = %q, want header value", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never reached")
}
