// Package admission protects the gateway from overload. Three mechanisms
// compose, all optional:
//
//   - Per-client token buckets cap each client's sustained request rate
//     (Config.Rate, Config.Burst). Clients identify themselves with an
//     X-Client-ID header; anonymous clients share a bucket per remote host.
//   - A bounded admission queue caps concurrency: at most MaxInFlight
//     requests execute at once, at most MaxQueue more wait, and everything
//     beyond that is shed immediately.
//   - A per-request deadline (Config.Deadline) bounds each admitted
//     request's context; the gateway propagates it through the federation
//     into the source servers.
//
// Shed requests receive HTTP 429 with a Retry-After header so well-behaved
// clients back off instead of hammering a saturated gateway; the metrics
// distinguish rate-limit sheds from queue-full sheds.
package admission

import (
	"context"
	"errors"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dits/internal/metrics"
	"dits/internal/obs"
)

// errShed marks an admission.wait span whose request was shed.
var errShed = errors.New("shed")

// Config tunes the admission controller. The zero value admits everything
// (no rate limit, no concurrency bound, no deadline).
type Config struct {
	// Rate is each client's sustained budget in requests/second;
	// 0 or less disables per-client rate limiting.
	Rate float64
	// Burst is the bucket capacity — how many requests a client may issue
	// back-to-back after idling. Defaults to ceil(Rate), at least 1.
	Burst int
	// MaxInFlight bounds concurrently executing requests; 0 or less means
	// unbounded.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; beyond it
	// requests are shed. Only meaningful with MaxInFlight > 0.
	MaxQueue int
	// Deadline bounds each admitted request's context; 0 means none.
	Deadline time.Duration
}

// bucket is one client's token bucket, lazily refilled on access.
type bucket struct {
	tokens float64
	last   time.Time
}

// pruneEvery bounds how often the bucket map is swept for idle clients.
const pruneEvery = time.Minute

// Controller applies a Config to requests. Use New; the zero value is not
// ready. Safe for concurrent use.
type Controller struct {
	cfg Config
	sem chan struct{} // nil when MaxInFlight <= 0

	mu        sync.Mutex
	buckets   map[string]*bucket
	lastPrune time.Time
	now       func() time.Time // test hook

	admitted  metrics.Counter
	shed      metrics.CounterVec // by reason: rate | queue
	deadlines metrics.Counter    // admitted requests that exceeded Deadline
	inFlight  metrics.Gauge
	queued    metrics.Gauge
}

// New creates a controller for the config.
func New(cfg Config) *Controller {
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(math.Max(1, math.Ceil(cfg.Rate)))
	}
	c := &Controller{
		cfg:     cfg,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
	if cfg.MaxInFlight > 0 {
		c.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	return c
}

// Deadline returns the configured per-request deadline (0 when none).
func (c *Controller) Deadline() time.Duration { return c.cfg.Deadline }

// RecordDeadlineExceeded counts one admitted request that ran out of its
// deadline; the gateway calls it when mapping the failure to HTTP 504.
func (c *Controller) RecordDeadlineExceeded() { c.deadlines.Inc() }

// Stats is a snapshot of the controller's counters.
type Stats struct {
	Admitted         int64   `json:"admitted"`
	ShedRate         int64   `json:"shedRate"`
	ShedQueue        int64   `json:"shedQueue"`
	DeadlineExceeded int64   `json:"deadlineExceeded"`
	InFlight         int64   `json:"inFlight"`
	Queued           int64   `json:"queued"`
	TrackedClients   int     `json:"trackedClients"`
	MaxInFlight      int     `json:"maxInFlight"`
	MaxQueue         int     `json:"maxQueue"`
	RatePerSec       float64 `json:"ratePerSec"`
	Burst            int     `json:"burst"`
	DeadlineMs       int64   `json:"deadlineMs"`
}

// Stats returns a snapshot of the controller's counters.
func (c *Controller) Stats() Stats {
	shed := c.shed.Snapshot()
	c.mu.Lock()
	tracked := len(c.buckets)
	c.mu.Unlock()
	return Stats{
		Admitted:         c.admitted.Value(),
		ShedRate:         shed["rate"],
		ShedQueue:        shed["queue"],
		DeadlineExceeded: c.deadlines.Value(),
		InFlight:         c.inFlight.Value(),
		Queued:           c.queued.Value(),
		TrackedClients:   tracked,
		MaxInFlight:      c.cfg.MaxInFlight,
		MaxQueue:         c.cfg.MaxQueue,
		RatePerSec:       c.cfg.Rate,
		Burst:            c.cfg.Burst,
		DeadlineMs:       c.cfg.Deadline.Milliseconds(),
	}
}

// Register exposes the admission counters on a metrics registry under the
// dits_admission_* names.
func (c *Controller) Register(r *metrics.Registry) {
	r.RegisterCounter("dits_admission_admitted_total", "Requests admitted", &c.admitted)
	r.RegisterCounterVec("dits_admission_shed_total", "Requests shed, by reason", "reason", &c.shed)
	r.RegisterCounter("dits_admission_deadline_exceeded_total",
		"Admitted requests that exceeded the request deadline", &c.deadlines)
	r.RegisterGauge("dits_admission_in_flight", "Requests currently executing", &c.inFlight)
	r.RegisterGauge("dits_admission_queued", "Requests waiting for an in-flight slot", &c.queued)
}

// allow consumes one token from the client's bucket, reporting whether the
// request may proceed and, when it may not, how long until a token refills.
func (c *Controller) allow(client string) (bool, time.Duration) {
	if c.cfg.Rate <= 0 {
		return true, 0
	}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked(now)
	b := c.buckets[client]
	if b == nil {
		b = &bucket{tokens: float64(c.cfg.Burst)}
		c.buckets[client] = b
	} else {
		b.tokens = math.Min(float64(c.cfg.Burst), b.tokens+now.Sub(b.last).Seconds()*c.cfg.Rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / c.cfg.Rate * float64(time.Second))
}

// pruneLocked drops buckets idle long enough to have fully refilled —
// indistinguishable from fresh ones — so the map tracks active clients
// only. The caller holds c.mu.
func (c *Controller) pruneLocked(now time.Time) {
	if now.Sub(c.lastPrune) < pruneEvery {
		return
	}
	c.lastPrune = now
	full := time.Duration(float64(c.cfg.Burst) / c.cfg.Rate * float64(time.Second))
	for id, b := range c.buckets {
		if now.Sub(b.last) > full {
			delete(c.buckets, id)
		}
	}
}

// Admit decides one request. On success it returns a release function the
// caller MUST call when the request finishes. On shedding it returns
// ok=false with the Retry-After hint and records the shed. ctx bounds the
// time spent waiting in the admission queue.
func (c *Controller) Admit(ctx context.Context, client string) (release func(), retryAfter time.Duration, ok bool) {
	if ok, retry := c.allow(client); !ok {
		c.shed.With("rate").Inc()
		return nil, retry, false
	}
	if c.sem != nil {
		select {
		case c.sem <- struct{}{}: // free slot, no queueing
		default:
			if int(c.queued.Value()) >= c.cfg.MaxQueue {
				c.shed.With("queue").Inc()
				return nil, time.Second, false
			}
			c.queued.Add(1)
			select {
			case c.sem <- struct{}{}:
				c.queued.Add(-1)
			case <-ctx.Done():
				c.queued.Add(-1)
				c.shed.With("queue").Inc()
				return nil, time.Second, false
			}
		}
	}
	c.admitted.Inc()
	c.inFlight.Add(1)
	return func() {
		c.inFlight.Add(-1)
		if c.sem != nil {
			<-c.sem
		}
	}, 0, true
}

// ClientID identifies the requester: the X-Client-ID header when set, else
// the remote host (all anonymous requests from one address share a bucket).
func ClientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Middleware applies admission control and the request deadline to an HTTP
// handler. Shed requests get 429 with a Retry-After header (integer
// seconds, at least 1) and a JSON error body. On a traced request the
// time spent in Admit — token check plus any queue wait — is recorded as
// an "admission.wait" span, so a slow trace distinguishes queueing from
// execution.
func (c *Controller) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sp := obs.StartSpan(r.Context(), "admission.wait")
		release, retryAfter, ok := c.Admit(r.Context(), ClientID(r))
		if !ok {
			sp.EndErr(errShed)
		} else {
			sp.End()
		}
		if !ok {
			secs := int(math.Ceil(retryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"overloaded, retry later"}`))
			return
		}
		defer release()
		if d := c.cfg.Deadline; d > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}
