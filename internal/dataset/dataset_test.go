package dataset

import (
	"math"
	"math/rand"
	"testing"

	"dits/internal/cellset"
	"dits/internal/geo"
)

func grid4() geo.Grid {
	return geo.NewGrid(2, geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4})
}

func TestNewNode(t *testing.T) {
	g := grid4()
	d := &Dataset{ID: 7, Name: "route-7", Points: []geo.Point{
		geo.Pt(1.5, 2.5), geo.Pt(1.5, 3.5), // cells 9 and 11: coords (1,2),(1,3)
	}}
	n := NewNode(g, d)
	if n == nil {
		t.Fatal("NewNode returned nil for non-empty dataset")
	}
	if n.ID != 7 || n.Name != "route-7" {
		t.Errorf("identity not carried: %+v", n)
	}
	if !n.Cells.Equal(cellset.Set{9, 11}) {
		t.Errorf("Cells = %v, want {9,11}", n.Cells)
	}
	want := geo.Rect{MinX: 1, MinY: 2, MaxX: 1, MaxY: 3}
	if n.Rect != want {
		t.Errorf("Rect = %v, want %v", n.Rect, want)
	}
	if n.O != geo.Pt(1, 2.5) {
		t.Errorf("pivot = %v, want (1,2.5)", n.O)
	}
	if math.Abs(n.R-0.5) > 1e-12 {
		t.Errorf("radius = %v, want 0.5", n.R)
	}
	if n.Coverage() != 2 {
		t.Errorf("Coverage = %d, want 2", n.Coverage())
	}
}

func TestNewNodeEmpty(t *testing.T) {
	if n := NewNode(grid4(), &Dataset{ID: 1}); n != nil {
		t.Errorf("empty dataset should yield nil node, got %v", n)
	}
	if n := NewNodeFromCells(1, "x", nil); n != nil {
		t.Errorf("empty cells should yield nil node, got %v", n)
	}
}

func TestOverlap(t *testing.T) {
	a := NewNodeFromCells(1, "", cellset.New(1, 2, 3))
	b := NewNodeFromCells(2, "", cellset.New(2, 3, 4))
	if got := a.Overlap(b); got != 2 {
		t.Errorf("Overlap = %d, want 2", got)
	}
}

func TestDistBoundsBracketTrueDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		a := randomNode(rng, trial*2)
		b := randomNode(rng, trial*2+1)
		lb, ub := a.DistBounds(b)
		if lb < 0 {
			t.Fatalf("lb = %v < 0", lb)
		}
		if lb > ub+1e-9 {
			t.Fatalf("lb %v > ub %v", lb, ub)
		}
		d := cellset.Dist(a.Cells, b.Cells)
		if d < lb-1e-9 || d > ub+1e-9 {
			t.Fatalf("trial %d: true dist %v outside [%v, %v]\na=%v\nb=%v",
				trial, d, lb, ub, a.Cells, b.Cells)
		}
	}
}

func TestDistBoundsPaperExample(t *testing.T) {
	// Example 6 of the paper: centers 5 apart, radii sqrt2 each; the true
	// distance sqrt5 lies within [5−2·sqrt2, 5+2·sqrt2].
	a := &Node{O: geo.Pt(1, 1), R: math.Sqrt2}
	b := &Node{O: geo.Pt(4, 5), R: math.Sqrt2}
	lb, ub := a.DistBounds(b)
	if math.Abs(lb-(5-2*math.Sqrt2)) > 1e-12 {
		t.Errorf("lb = %v, want %v", lb, 5-2*math.Sqrt2)
	}
	if math.Abs(ub-(5+2*math.Sqrt2)) > 1e-12 {
		t.Errorf("ub = %v, want %v", ub, 5+2*math.Sqrt2)
	}
}

func TestMerge(t *testing.T) {
	a := NewNodeFromCells(1, "", cellset.New(geo.ZEncode(0, 0), geo.ZEncode(1, 1)))
	b := NewNodeFromCells(2, "", cellset.New(geo.ZEncode(3, 3)))
	m := a.Merge(b)
	if m.Coverage() != 3 {
		t.Errorf("merged cells = %d, want 3", m.Coverage())
	}
	if m.CompactCells().Len() != 3 {
		t.Errorf("merged compact cells = %d, want 3", m.CompactCells().Len())
	}
	if m.Cells != nil {
		t.Error("merged node should carry the container form only")
	}
	if !m.Rect.ContainsRect(a.Rect) || !m.Rect.ContainsRect(b.Rect) {
		t.Error("merged rect should contain both inputs")
	}
	if m.O != m.Rect.Center() {
		t.Error("merged pivot should be rect center")
	}
	if got := a.Merge(nil); got != a {
		t.Error("Merge(nil) should return receiver")
	}
	var nilNode *Node
	if got := nilNode.Merge(b); got != b {
		t.Error("nil.Merge(b) should return b")
	}
}

func TestSourceStats(t *testing.T) {
	s := &Source{Name: "test", Datasets: []*Dataset{
		{ID: 0, Points: []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)}},
		{ID: 1, Points: []geo.Point{geo.Pt(2, 2)}},
		{ID: 2}, // empty
	}}
	st := s.ComputeStats()
	if st.NumDatasets != 3 || st.NumPoints != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.MinSize != 0 || st.MaxSize != 2 {
		t.Errorf("sizes = [%d,%d], want [0,2]", st.MinSize, st.MaxSize)
	}
	want := geo.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	if st.Bounds != want {
		t.Errorf("bounds = %v, want %v", st.Bounds, want)
	}
	nodes := s.Nodes(grid4())
	if len(nodes) != 2 {
		t.Errorf("Nodes dropped empties wrong: got %d, want 2", len(nodes))
	}
}

func randomNode(rng *rand.Rand, id int) *Node {
	n := 1 + rng.Intn(30)
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = geo.ZEncode(uint32(rng.Intn(128)), uint32(rng.Intn(128)))
	}
	return NewNodeFromCells(id, "", cellset.New(ids...))
}
