package dataset

import (
	"fmt"
	"sort"

	"dits/internal/geo"
)

// Source is a spatial data source (Definition 3): an autonomous collection
// of spatial datasets. Each source may pick its own grid resolution; the
// global index reconciles them through latitude/longitude space (§V-B).
type Source struct {
	Name     string
	Datasets []*Dataset
}

// NumDatasets returns n, the number of datasets in the source.
func (s *Source) NumDatasets() int { return len(s.Datasets) }

// NumPoints returns the total number of points across all datasets.
func (s *Source) NumPoints() int {
	total := 0
	for _, d := range s.Datasets {
		total += len(d.Points)
	}
	return total
}

// Bounds returns the MBR, in raw coordinates, of all points in the source.
func (s *Source) Bounds() geo.Rect {
	r := geo.EmptyRect
	for _, d := range s.Datasets {
		r = r.Union(d.MBR())
	}
	return r
}

// Nodes converts every non-empty dataset into a dataset node under grid g,
// preserving dataset order.
func (s *Source) Nodes(g geo.Grid) []*Node {
	nodes := make([]*Node, 0, len(s.Datasets))
	for _, d := range s.Datasets {
		if n := NewNode(g, d); n != nil {
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// Stats summarizes a source the way Table I of the paper does.
type Stats struct {
	Name        string
	NumDatasets int
	NumPoints   int
	Bounds      geo.Rect
	MinSize     int // smallest dataset (points)
	MaxSize     int // largest dataset (points)
}

// ComputeStats returns the Table I row for the source.
func (s *Source) ComputeStats() Stats {
	st := Stats{
		Name:        s.Name,
		NumDatasets: len(s.Datasets),
		NumPoints:   s.NumPoints(),
		Bounds:      s.Bounds(),
	}
	if len(s.Datasets) > 0 {
		st.MinSize = s.Datasets[0].Size()
	}
	for _, d := range s.Datasets {
		if d.Size() < st.MinSize {
			st.MinSize = d.Size()
		}
		if d.Size() > st.MaxSize {
			st.MaxSize = d.Size()
		}
	}
	return st
}

// String implements fmt.Stringer.
func (st Stats) String() string {
	return fmt.Sprintf("%s: %d datasets, %d points, bounds %v",
		st.Name, st.NumDatasets, st.NumPoints, st.Bounds)
}

// SortByID orders nodes by dataset ID, useful for deterministic comparison
// of search results in tests.
func SortByID(nodes []*Node) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
}
