// Package dataset models the data of the paper: spatial datasets
// (Definition 2), the dataset nodes that wrap them with MBR/pivot/radius
// metadata (Definition 12), and spatial data sources (Definition 3).
package dataset

import (
	"fmt"

	"dits/internal/cellset"
	"dits/internal/geo"
)

// Dataset is a named collection of spatial points (Definition 2).
type Dataset struct {
	ID     int         // identifier, unique within a source
	Name   string      // human-readable name (e.g. a file or route name)
	Points []geo.Point // the raw spatial points
}

// Size returns |D|, the number of points.
func (d *Dataset) Size() int { return len(d.Points) }

// MBR returns the minimum bounding rectangle of the dataset's points.
func (d *Dataset) MBR() geo.Rect { return geo.BoundingRect(d.Points) }

// CellSet returns the cell-based dataset S_{D,Cθ} under grid g.
func (d *Dataset) CellSet(g geo.Grid) cellset.Set {
	return cellset.FromPoints(g, d.Points)
}

// String implements fmt.Stringer.
func (d *Dataset) String() string {
	return fmt.Sprintf("Dataset{id=%d, name=%q, |D|=%d}", d.ID, d.Name, len(d.Points))
}

// Node is a dataset node (Definition 12): the per-dataset record stored in
// the indexes. Rect is the MBR in grid-coordinate space, O the pivot
// (center of Rect), R half the diagonal of Rect, and Cells the cell-based
// dataset. Keeping everything in grid coordinates makes MBR pruning,
// connectivity bounds (Lemma 4), and cell distances directly comparable.
type Node struct {
	ID    int         // dataset identifier
	Name  string      // dataset name carried through for results
	Rect  geo.Rect    // MBR over the cell grid coordinates
	O     geo.Point   // pivot: center of Rect
	R     float64     // radius: half of Rect's diagonal
	Cells cellset.Set // the cell-based dataset S_D

	// Compact is the container representation of Cells, the form the
	// overlap/coverage hot paths operate on. NewNode, NewNodeFromCells,
	// and Merge populate it; hand-built nodes may leave it nil and
	// searchers fall back through CompactCells.
	Compact *cellset.Compact
}

// NewNode builds the dataset node of d under grid g. It returns nil for a
// dataset with no points: an empty dataset occupies no cells and can never
// join anything.
func NewNode(g geo.Grid, d *Dataset) *Node {
	cells := d.CellSet(g)
	n := NewNodeFromCells(d.ID, d.Name, cells)
	return n
}

// NewNodeFromCells builds a dataset node directly from a cell-based
// dataset. It returns nil when cells is empty.
func NewNodeFromCells(id int, name string, cells cellset.Set) *Node {
	minX, minY, maxX, maxY, ok := cells.Bounds()
	if !ok {
		return nil
	}
	r := geo.Rect{
		MinX: float64(minX), MinY: float64(minY),
		MaxX: float64(maxX), MaxY: float64(maxY),
	}
	return &Node{
		ID:      id,
		Name:    name,
		Rect:    r,
		O:       r.Center(),
		R:       r.Radius(),
		Cells:   cells,
		Compact: cellset.FromSet(cells),
	}
}

// CompactCells returns the node's container representation, deriving it
// from Cells when the node was built by hand. It never mutates the node,
// so concurrent read-only searches stay safe.
func (n *Node) CompactCells() *cellset.Compact {
	if n.Compact != nil {
		return n.Compact
	}
	return cellset.FromSet(n.Cells)
}

// EnsureCompact caches the container representation on the node and
// returns it. Callers must hold exclusive access to the node (index build
// and update paths do); searchers use CompactCells instead.
func (n *Node) EnsureCompact() *cellset.Compact {
	if n.Compact == nil {
		n.Compact = cellset.FromSet(n.Cells)
	}
	return n.Compact
}

// FlatCells returns the node's cells as a flat sorted Set. Nodes loaded
// from an mmap'd snapshot (and nodes produced by Merge) carry only the
// container form; FlatCells materializes a flat copy for callers that
// need one — e.g. wire responses — without mutating the node, so it is
// safe under concurrent read-only searches.
func (n *Node) FlatCells() cellset.Set {
	if n.Cells != nil {
		return n.Cells
	}
	return n.Compact.Set()
}

// Coverage returns |S_D|, the number of cells covered by the node.
func (n *Node) Coverage() int {
	if n.Compact != nil {
		return n.Compact.Len()
	}
	return n.Cells.Len()
}

// Overlap returns |S_D ∩ S_Q| against another node's cell set.
func (n *Node) Overlap(q *Node) int {
	return n.CompactCells().IntersectCount(q.CompactCells())
}

// DistBounds returns the Lemma 4 lower and upper bounds on the cell-based
// dataset distance between n and q:
//
//	lb = max(‖o_n − o_q‖ − r_n − r_q, 0)    ub = ‖o_n − o_q‖ + r_n + r_q
func (n *Node) DistBounds(q *Node) (lb, ub float64) {
	c := n.O.Dist(q.O)
	lb = c - n.R - q.R
	if lb < 0 {
		lb = 0
	}
	return lb, c + n.R + q.R
}

// Merge returns a new node covering n and m: union of cells, combined MBR,
// recomputed pivot and radius. It implements the spatial merge strategy of
// CoverageSearch (Algorithm 3, line 11). The merged node keeps n's ID and
// an empty name; it never enters an index, and it carries the cell union
// in container form only (Cells stays nil): the greedy loops that consume
// merged nodes read geometry and CompactCells, so materializing a flat
// copy every round would be pure allocation waste.
func (n *Node) Merge(m *Node) *Node {
	if m == nil {
		return n
	}
	if n == nil {
		return m
	}
	r := n.Rect.Union(m.Rect)
	return &Node{
		ID:      n.ID,
		Rect:    r,
		O:       r.Center(),
		R:       r.Radius(),
		Compact: n.CompactCells().Union(m.CompactCells()),
	}
}

// String implements fmt.Stringer.
func (n *Node) String() string {
	return fmt.Sprintf("Node{id=%d, |S|=%d, rect=%v}", n.ID, n.Cells.Len(), n.Rect)
}
