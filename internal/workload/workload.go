// Package workload generates synthetic spatial data sources replicating the
// shape of the paper's five real sources (Table I, Fig. 7): dataset counts,
// point volumes, coordinate ranges, and spatial skew. The real portals
// (Baidu Maps, BTAA Geoportal, NYU Spatial Data Repository, the Maryland/DC
// transit portal, and the University of Minnesota repository) cannot be
// bundled, so seeded generators stand in; the search algorithms only
// observe cell sets and MBR geometry, which these generators reproduce.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dits/internal/dataset"
	"dits/internal/geo"
)

// Kind selects the spatial character of a generated source, mirroring the
// heatmaps of Fig. 7.
type Kind int

const (
	// KindClustered concentrates datasets around a set of city-like
	// hotspots (Baidu, NYU).
	KindClustered Kind = iota
	// KindUniform spreads datasets widely with mild clustering (BTAA, UMN).
	KindUniform
	// KindRoutes generates trajectory-like datasets inside one dense metro
	// region (Transit).
	KindRoutes
)

// Spec describes one synthetic data source.
type Spec struct {
	Name        string
	NumDatasets int      // Table I dataset count at scale 1.0
	TotalPoints int      // Table I point count at scale 1.0
	Bounds      geo.Rect // Table I coordinate range (lon/lat degrees)
	Kind        Kind
	Clusters    int // hotspot count for KindClustered / KindUniform
}

// Specs returns the five sources of Table I. Point totals are the paper's;
// Generate scales them down and additionally caps points per dataset so
// laptop-scale runs stay fast.
func Specs() []Spec {
	return []Spec{
		{
			Name: "Baidu", NumDatasets: 6581, TotalPoints: 3710526,
			Bounds: geo.Rect{MinX: 87.52, MinY: 19.98, MaxX: 127.15, MaxY: 46.35},
			Kind:   KindClustered, Clusters: 28,
		},
		{
			Name: "BTAA", NumDatasets: 3204, TotalPoints: 96788280,
			Bounds: geo.Rect{MinX: -179.77, MinY: -87.70, MaxX: 179.99, MaxY: 71.40},
			Kind:   KindUniform, Clusters: 12,
		},
		{
			Name: "NYU", NumDatasets: 1093, TotalPoints: 15303410,
			Bounds: geo.Rect{MinX: -138.00, MinY: -74.01, MaxX: 56.39, MaxY: 83.09},
			Kind:   KindClustered, Clusters: 16,
		},
		{
			Name: "Transit", NumDatasets: 1967, TotalPoints: 522461,
			Bounds: geo.Rect{MinX: -77.73, MinY: 36.81, MaxX: -74.53, MaxY: 39.78},
			Kind:   KindRoutes, Clusters: 6,
		},
		{
			Name: "UMN", NumDatasets: 5453, TotalPoints: 54417609,
			Bounds: geo.Rect{MinX: -179.14, MinY: -14.55, MaxX: 179.77, MaxY: 71.35},
			Kind:   KindUniform, Clusters: 20,
		},
	}
}

// SpecByName returns the spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown source %q", name)
}

// MaxPointsPerDataset caps a single generated dataset's size so scaled-down
// runs of the point-heavy sources (BTAA holds ~30k points per dataset)
// remain laptop-sized without changing the datasets' spatial footprint.
// Experiments chasing the paper's absolute workload weight can raise it
// (cmd/ditsbench -maxpoints); the default keeps the test suite fast.
var MaxPointsPerDataset = 2000

// Generate builds a synthetic source from its spec at the given scale
// (multiple of Table I's dataset count; 1 reproduces the paper's sizes,
// values above 1 grow past them for beyond-RAM experiments). Generation
// is deterministic in (spec.Name, scale, seed).
func Generate(spec Spec, scale float64, seed int64) *dataset.Source {
	if scale <= 0 {
		scale = 1
	}
	if scale > 100 {
		scale = 100
	}
	rng := rand.New(rand.NewSource(seed ^ int64(hash(spec.Name))))
	n := int(math.Ceil(float64(spec.NumDatasets) * scale))
	if n < 1 {
		n = 1
	}
	meanPts := float64(spec.TotalPoints) / float64(spec.NumDatasets)
	if meanPts > float64(MaxPointsPerDataset) {
		meanPts = float64(MaxPointsPerDataset)
	}
	if meanPts < 4 {
		meanPts = 4
	}

	centers := hotspots(rng, spec)
	src := &dataset.Source{Name: spec.Name, Datasets: make([]*dataset.Dataset, 0, n)}
	for i := 0; i < n; i++ {
		// Log-normal size variation around the mean.
		size := int(meanPts * math.Exp(rng.NormFloat64()*0.6))
		if size < 2 {
			size = 2
		}
		if size > MaxPointsPerDataset {
			size = MaxPointsPerDataset
		}
		var pts []geo.Point
		switch spec.Kind {
		case KindRoutes:
			pts = route(rng, spec.Bounds, centers, size)
		default:
			pts = blob(rng, spec.Bounds, centers, size, spec.Kind)
		}
		src.Datasets = append(src.Datasets, &dataset.Dataset{
			ID:     i,
			Name:   fmt.Sprintf("%s-%05d", spec.Name, i),
			Points: pts,
		})
	}
	return src
}

// GenerateAll builds all five sources at the given scale.
func GenerateAll(scale float64, seed int64) []*dataset.Source {
	specs := Specs()
	out := make([]*dataset.Source, len(specs))
	for i, sp := range specs {
		out[i] = Generate(sp, scale, seed+int64(i))
	}
	return out
}

// hotspots places the spec's cluster centers, biased toward the middle of
// the bounds like real population centers.
func hotspots(rng *rand.Rand, spec Spec) []geo.Point {
	k := spec.Clusters
	if k < 1 {
		k = 1
	}
	centers := make([]geo.Point, k)
	for i := range centers {
		u, v := beta(rng), beta(rng)
		centers[i] = geo.Pt(
			spec.Bounds.MinX+u*spec.Bounds.Width(),
			spec.Bounds.MinY+v*spec.Bounds.Height(),
		)
	}
	return centers
}

// beta samples a center-biased value in [0,1] (mean of two uniforms).
func beta(rng *rand.Rand) float64 { return (rng.Float64() + rng.Float64()) / 2 }

// blob generates a Gaussian cloud around one hotspot. KindClustered uses a
// tight spread (dense city heatmaps); KindUniform spreads the hotspots
// continent-wide but keeps each dataset local — real repository datasets
// cover a state or a survey area, not a hemisphere.
func blob(rng *rand.Rand, bounds geo.Rect, centers []geo.Point, size int, kind Kind) []geo.Point {
	c := centers[rng.Intn(len(centers))]
	frac := 0.02
	if kind == KindUniform {
		frac = 0.035
	}
	sx := bounds.Width() * frac
	sy := bounds.Height() * frac
	pts := make([]geo.Point, size)
	for i := range pts {
		pts[i] = clampPt(geo.Pt(c.X+rng.NormFloat64()*sx, c.Y+rng.NormFloat64()*sy), bounds)
	}
	return pts
}

// route generates a trajectory: a random walk out of a transit hub, the
// shape of the transit datasets in Fig. 1. Routes leave each hub along one
// of a few quantized headings with little wander, so routes sharing a hub
// and heading reuse the same corridor — which is what makes real transit
// datasets overlap and connect.
func route(rng *rand.Rand, bounds geo.Rect, centers []geo.Point, size int) []geo.Point {
	c := centers[rng.Intn(len(centers))]
	step := math.Min(bounds.Width(), bounds.Height()) * 0.004
	x := c.X + rng.NormFloat64()*bounds.Width()*0.002
	y := c.Y + rng.NormFloat64()*bounds.Height()*0.002
	heading := float64(rng.Intn(6))/6*2*math.Pi + rng.NormFloat64()*0.05
	pts := make([]geo.Point, size)
	for i := range pts {
		pts[i] = clampPt(geo.Pt(x, y), bounds)
		heading += rng.NormFloat64() * 0.08
		x += math.Cos(heading) * step
		y += math.Sin(heading) * step
	}
	return pts
}

func clampPt(p geo.Point, b geo.Rect) geo.Point {
	return geo.Pt(math.Min(math.Max(p.X, b.MinX), b.MaxX), math.Min(math.Max(p.Y, b.MinY), b.MaxY))
}

// hash is a tiny FNV-1a over the name for seed mixing.
func hash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// SampleQueries picks q datasets from the source as query datasets,
// mirroring §VII-A ("we randomly select 50 datasets from all downloaded
// datasets as the query datasets"). Deterministic in seed.
func SampleQueries(src *dataset.Source, q int, seed int64) []*dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	if q >= len(src.Datasets) {
		return src.Datasets
	}
	perm := rng.Perm(len(src.Datasets))
	out := make([]*dataset.Dataset, q)
	for i := 0; i < q; i++ {
		out[i] = src.Datasets[perm[i]]
	}
	return out
}

// Heatmap renders the source's point density on a res×res grid (row-major,
// row 0 = south), reproducing Fig. 7.
func Heatmap(src *dataset.Source, res int) [][]int {
	grid := make([][]int, res)
	for i := range grid {
		grid[i] = make([]int, res)
	}
	b := src.Bounds()
	if b.IsEmpty() || res == 0 {
		return grid
	}
	w, h := b.Width(), b.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	for _, d := range src.Datasets {
		for _, p := range d.Points {
			x := int(float64(res) * (p.X - b.MinX) / w)
			y := int(float64(res) * (p.Y - b.MinY) / h)
			if x >= res {
				x = res - 1
			}
			if y >= res {
				y = res - 1
			}
			grid[y][x]++
		}
	}
	return grid
}
