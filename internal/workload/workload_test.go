package workload

import (
	"testing"

	"dits/internal/geo"
)

func TestSpecs(t *testing.T) {
	specs := Specs()
	if len(specs) != 5 {
		t.Fatalf("got %d specs, want 5", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if s.NumDatasets <= 0 || s.TotalPoints <= 0 {
			t.Errorf("%s: bad counts %+v", s.Name, s)
		}
		if s.Bounds.IsEmpty() {
			t.Errorf("%s: empty bounds", s.Name)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"Baidu", "BTAA", "NYU", "Transit", "UMN"} {
		if !names[want] {
			t.Errorf("missing source %s", want)
		}
	}
	if _, err := SpecByName("Baidu"); err != nil {
		t.Error(err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("SpecByName should fail for unknown names")
	}
}

func TestGenerateShape(t *testing.T) {
	for _, spec := range Specs() {
		src := Generate(spec, 0.02, 42)
		wantN := int(float64(spec.NumDatasets)*0.02) + 1
		if n := src.NumDatasets(); n < wantN-1 || n > wantN+1 {
			t.Errorf("%s: %d datasets, want ~%d", spec.Name, n, wantN)
		}
		b := src.Bounds()
		if !spec.Bounds.ContainsRect(b) {
			t.Errorf("%s: generated bounds %v outside spec %v", spec.Name, b, spec.Bounds)
		}
		for _, d := range src.Datasets {
			if len(d.Points) < 2 {
				t.Errorf("%s/%s: only %d points", spec.Name, d.Name, len(d.Points))
			}
			if len(d.Points) > MaxPointsPerDataset {
				t.Errorf("%s/%s: %d points exceeds cap", spec.Name, d.Name, len(d.Points))
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Specs()[0]
	a := Generate(spec, 0.01, 7)
	b := Generate(spec, 0.01, 7)
	if a.NumDatasets() != b.NumDatasets() || a.NumPoints() != b.NumPoints() {
		t.Fatal("generation is not deterministic in counts")
	}
	for i := range a.Datasets {
		pa, pb := a.Datasets[i].Points, b.Datasets[i].Points
		if len(pa) != len(pb) {
			t.Fatalf("dataset %d sizes differ", i)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("dataset %d point %d differs: %v vs %v", i, j, pa[j], pb[j])
			}
		}
	}
	c := Generate(spec, 0.01, 8)
	same := a.NumPoints() == c.NumPoints()
	for i := 0; same && i < len(a.Datasets); i++ {
		pa, pc := a.Datasets[i].Points, c.Datasets[i].Points
		if len(pa) != len(pc) {
			same = false
			break
		}
		for j := range pa {
			if pa[j] != pc[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should produce different data")
	}
}

func TestGenerateScaleRange(t *testing.T) {
	spec := Spec{Name: "tiny", NumDatasets: 3, TotalPoints: 30,
		Bounds: geo.Rect{MaxX: 1, MaxY: 1}, Kind: KindClustered, Clusters: 1}
	src := Generate(spec, -1, 1)
	if src.NumDatasets() != 3 {
		t.Errorf("bad scale: %d datasets, want 3", src.NumDatasets())
	}
	// Scale > 1 grows past the Table I count (beyond-RAM workloads)...
	src2 := Generate(spec, 2, 1)
	if src2.NumDatasets() != 6 {
		t.Errorf("scale 2: %d datasets, want 6", src2.NumDatasets())
	}
	// ...but is capped so a typo'd scale cannot exhaust memory.
	src3 := Generate(spec, 1e9, 1)
	if src3.NumDatasets() != 300 {
		t.Errorf("huge scale: %d datasets, want 300", src3.NumDatasets())
	}
	// The prefix property bigsource's parity basis relies on: a smaller
	// scale at the same seed generates a prefix of the bigger source.
	for i, d := range src2.Datasets[:3] {
		if d.Name != src.Datasets[i].Name || len(d.Points) != len(src.Datasets[i].Points) {
			t.Errorf("dataset %d: scale-1 source is not a prefix of the scale-2 source", i)
		}
	}
}

func TestSampleQueries(t *testing.T) {
	src := Generate(Specs()[3], 0.05, 1)
	qs := SampleQueries(src, 10, 3)
	if len(qs) != 10 {
		t.Fatalf("got %d queries, want 10", len(qs))
	}
	seen := map[int]bool{}
	for _, q := range qs {
		if seen[q.ID] {
			t.Errorf("duplicate query dataset %d", q.ID)
		}
		seen[q.ID] = true
	}
	again := SampleQueries(src, 10, 3)
	for i := range qs {
		if qs[i].ID != again[i].ID {
			t.Error("sampling not deterministic")
		}
	}
	all := SampleQueries(src, 1<<20, 3)
	if len(all) != src.NumDatasets() {
		t.Errorf("oversampling should return all datasets")
	}
}

func TestHeatmap(t *testing.T) {
	src := Generate(Specs()[0], 0.01, 5)
	hm := Heatmap(src, 16)
	if len(hm) != 16 || len(hm[0]) != 16 {
		t.Fatalf("heatmap shape %dx%d", len(hm), len(hm[0]))
	}
	total := 0
	for _, row := range hm {
		for _, v := range row {
			if v < 0 {
				t.Fatal("negative density")
			}
			total += v
		}
	}
	if total != src.NumPoints() {
		t.Errorf("heatmap total %d, want %d points", total, src.NumPoints())
	}
	// Clustered sources concentrate mass: the max bin should hold far more
	// than the uniform share.
	maxBin := 0
	for _, row := range hm {
		for _, v := range row {
			if v > maxBin {
				maxBin = v
			}
		}
	}
	if maxBin*256 < total*4 {
		t.Errorf("clustered heatmap looks uniform: max %d of %d", maxBin, total)
	}
}
