package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dits/internal/dataset"
)

func traceSources(t *testing.T) []*dataset.Source {
	t.Helper()
	var out []*dataset.Source
	for _, name := range []string{"Transit", "Baidu"} {
		spec, err := SpecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Generate(spec, 0.01, 3))
	}
	return out
}

func TestGenerateTraceDeterministicAndApplicable(t *testing.T) {
	srcs := traceSources(t)
	a := GenerateTrace(srcs, 200, 42)
	b := GenerateTrace(srcs, 200, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("trace generation is not deterministic")
	}
	if len(a) != 200 {
		t.Fatalf("trace holds %d mutations, want 200", len(a))
	}
	c := GenerateTrace(srcs, 200, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}

	// Applicability: replay against per-source live sets; deletes and
	// updates must always target live IDs, inserts always new IDs.
	live := map[string]map[int]bool{}
	for _, src := range srcs {
		live[src.Name] = map[int]bool{}
		for _, d := range src.Datasets {
			if len(d.Points) > 0 {
				live[src.Name][d.ID] = true
			}
		}
	}
	var puts, deletes int
	for i, m := range a {
		switch m.Op {
		case MutPut:
			puts++
			if len(m.Points) == 0 {
				t.Fatalf("entry %d: put with no points", i)
			}
			live[m.Source][m.ID] = true
		case MutDelete:
			deletes++
			if !live[m.Source][m.ID] {
				t.Fatalf("entry %d: delete of non-live id %d", i, m.ID)
			}
			delete(live[m.Source], m.ID)
		}
	}
	if puts == 0 || deletes == 0 {
		t.Fatalf("degenerate mix: %d puts, %d deletes", puts, deletes)
	}
}

func TestTraceRoundtrip(t *testing.T) {
	srcs := traceSources(t)
	trace := GenerateTrace(srcs, 50, 7)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 50 {
		t.Fatalf("trace file has %d lines, want 50", got)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace, back) {
		t.Fatal("trace did not survive the JSONL roundtrip")
	}
	if _, err := ReadTrace(strings.NewReader(`{"op":"explode","source":"x","id":1}`)); err == nil {
		t.Fatal("unknown op must be rejected")
	}
}
