package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"

	"dits/internal/dataset"
	"dits/internal/geo"
)

// MutOp is a mutation-trace opcode.
type MutOp string

const (
	// MutPut upserts a dataset: insert when the ID is new at the source,
	// replace in place when it exists.
	MutPut MutOp = "put"
	// MutDelete removes a dataset by ID.
	MutDelete MutOp = "delete"
)

// Mutation is one entry of a reproducible mutation trace: the workload
// fed to the ingest write path by `ditsbench -exp ingest` and the
// examples. Points are raw coordinates; consumers grid them under their
// federation's shared grid, exactly like query points.
type Mutation struct {
	Op     MutOp        `json:"op"`
	Source string       `json:"source"`
	ID     int          `json:"id"`
	Name   string       `json:"name,omitempty"`
	Points [][2]float64 `json:"points,omitempty"`
}

// maxTracePoints caps one mutation's payload so trace files stay small.
const maxTracePoints = 120

// GenerateTrace produces a deterministic trace of n mutations against the
// given sources, round-robin: roughly 55% inserts of new datasets (jittered
// copies of existing ones, so they land where the source has data), 25%
// updates re-putting a live ID with perturbed points, and 20% deletes of
// live IDs. The trace is always applicable in order — deletes and updates
// only ever target IDs that are live at that point — and is a pure
// function of (sources, n, seed).
func GenerateTrace(sources []*dataset.Source, n int, seed int64) []Mutation {
	rng := rand.New(rand.NewSource(seed))
	type srcState struct {
		src    *dataset.Source
		live   []int
		points map[int][][2]float64 // points of live datasets
		nextID int
	}
	states := make([]*srcState, len(sources))
	for i, src := range sources {
		st := &srcState{src: src, points: make(map[int][][2]float64)}
		for _, d := range src.Datasets {
			if len(d.Points) == 0 {
				continue
			}
			st.live = append(st.live, d.ID)
			st.points[d.ID] = samplePoints(d.Points)
			if d.ID >= st.nextID {
				st.nextID = d.ID + 1
			}
		}
		// Leave generous headroom so trace IDs never collide with source
		// IDs even when the source grows by other means.
		st.nextID += 1 << 20
		states[i] = st
	}

	muts := make([]Mutation, 0, n)
	for i := 0; i < n; i++ {
		st := states[i%len(states)]
		bounds := st.src.Bounds()
		r := rng.Float64()
		switch {
		case r < 0.55 || len(st.live) == 0: // insert a new dataset
			id := st.nextID
			st.nextID++
			var base [][2]float64
			if len(st.live) > 0 {
				base = st.points[st.live[rng.Intn(len(st.live))]]
			} else {
				base = [][2]float64{{(bounds.MinX + bounds.MaxX) / 2, (bounds.MinY + bounds.MaxY) / 2}}
			}
			pts := jitterPoints(rng, base, bounds)
			muts = append(muts, Mutation{Op: MutPut, Source: st.src.Name, ID: id,
				Name: fmt.Sprintf("ingest-%s-%d", st.src.Name, id), Points: pts})
			st.live = append(st.live, id)
			st.points[id] = pts
		case r < 0.8: // update a live dataset in place
			id := st.live[rng.Intn(len(st.live))]
			pts := jitterPoints(rng, st.points[id], bounds)
			muts = append(muts, Mutation{Op: MutPut, Source: st.src.Name, ID: id,
				Name: fmt.Sprintf("update-%s-%d", st.src.Name, id), Points: pts})
			st.points[id] = pts
		default: // delete a live dataset
			j := rng.Intn(len(st.live))
			id := st.live[j]
			st.live = append(st.live[:j], st.live[j+1:]...)
			delete(st.points, id)
			muts = append(muts, Mutation{Op: MutDelete, Source: st.src.Name, ID: id})
		}
	}
	return muts
}

// samplePoints converts (and bounds) a dataset's points for the trace.
func samplePoints(pts []geo.Point) [][2]float64 {
	stride := 1
	if len(pts) > maxTracePoints {
		stride = (len(pts) + maxTracePoints - 1) / maxTracePoints
	}
	out := make([][2]float64, 0, maxTracePoints)
	for i := 0; i < len(pts); i += stride {
		out = append(out, [2]float64{pts[i].X, pts[i].Y})
	}
	return out
}

// jitterPoints perturbs each point by a small fraction of the source's
// extent, clamped back inside the bounds.
func jitterPoints(rng *rand.Rand, base [][2]float64, bounds geo.Rect) [][2]float64 {
	sx := (bounds.MaxX - bounds.MinX) / 200
	sy := (bounds.MaxY - bounds.MinY) / 200
	out := make([][2]float64, len(base))
	for i, p := range base {
		x := p[0] + rng.NormFloat64()*sx
		y := p[1] + rng.NormFloat64()*sy
		out[i] = [2]float64{
			min(max(x, bounds.MinX), bounds.MaxX),
			min(max(y, bounds.MinY), bounds.MaxY),
		}
	}
	return out
}

// WriteTrace writes a trace as JSON lines: one Mutation object per line,
// human-readable and streamable.
func WriteTrace(w io.Writer, trace []Mutation) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, m := range trace {
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace reads a JSONL trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Mutation, error) {
	dec := json.NewDecoder(r)
	var out []Mutation
	for {
		var m Mutation
		if err := dec.Decode(&m); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("workload: trace entry %d: %w", len(out), err)
		}
		if m.Op != MutPut && m.Op != MutDelete {
			return nil, fmt.Errorf("workload: trace entry %d has unknown op %q", len(out), m.Op)
		}
		out = append(out, m)
	}
}

// WriteTraceFile writes a trace to path.
func WriteTraceFile(path string, trace []Mutation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, trace); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceFile loads a trace from path.
func ReadTraceFile(path string) ([]Mutation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
