package core

import (
	"testing"

	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/workload"
)

func smallSource(name string, seed int64) *dataset.Source {
	spec := workload.Specs()[3] // Transit: small, dense
	spec.Name = name
	return workload.Generate(spec, 0.03, seed)
}

func TestEngineEndToEnd(t *testing.T) {
	src := smallSource("Transit", 1)
	eng, err := NewEngine(src, Config{Theta: 11})
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumDatasets() != src.NumDatasets() {
		t.Fatalf("indexed %d, want %d", eng.NumDatasets(), src.NumDatasets())
	}
	q := src.Datasets[5].Points

	rs := eng.OverlapSearch(q, 5)
	if len(rs) == 0 {
		t.Fatal("overlap search found nothing for an indexed dataset's own points")
	}
	if rs[0].ID != 5 {
		t.Errorf("self-query best match = %d, want 5", rs[0].ID)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Score > rs[i-1].Score {
			t.Error("results not ranked")
		}
	}

	cov := eng.CoverageSearch(q, 5, 4)
	if cov.Coverage < cov.QueryCoverage {
		t.Errorf("coverage %d < query coverage %d", cov.Coverage, cov.QueryCoverage)
	}
	if len(cov.Results) == 0 {
		t.Error("coverage picked nothing")
	}
	sum := cov.QueryCoverage
	for _, r := range cov.Results {
		sum += r.Score
	}
	if sum != cov.Coverage {
		t.Errorf("gains %d do not telescope to coverage %d", sum, cov.Coverage)
	}
}

func TestEngineMutations(t *testing.T) {
	src := smallSource("Transit", 2)
	eng, err := NewEngine(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := &dataset.Dataset{ID: 9999, Name: "new", Points: src.Datasets[0].Points}
	if err := eng.Insert(fresh); err != nil {
		t.Fatal(err)
	}
	rs := eng.OverlapSearch(src.Datasets[0].Points, 2)
	found := false
	for _, r := range rs {
		if r.ID == 9999 {
			found = true
		}
	}
	if !found {
		t.Error("inserted duplicate dataset should tie for the top")
	}
	if err := eng.Update(&dataset.Dataset{ID: 9999, Name: "new", Points: src.Datasets[1].Points}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(9999); err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(9999); err == nil {
		t.Error("double delete should error")
	}
	if err := eng.Insert(&dataset.Dataset{ID: 1234}); err == nil {
		t.Error("inserting an empty dataset should error")
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := NewEngine(nil, Config{}); err == nil {
		t.Error("nil source should error")
	}
	src := smallSource("T", 3)
	eng, _ := NewEngine(src, Config{})
	if rs := eng.OverlapSearch(nil, 5); rs != nil {
		t.Error("empty query should return nil")
	}
	if cov := eng.CoverageSearch(nil, 1, 5); len(cov.Results) != 0 {
		t.Error("empty query coverage should pick nothing")
	}
}

func TestFederationEndToEnd(t *testing.T) {
	// Three sources spread over one shared space.
	srcs := []*dataset.Source{
		smallSource("alpha", 10),
		smallSource("beta", 11),
		smallSource("gamma", 12),
	}
	var bounds geo.Rect
	bounds = geo.EmptyRect
	for _, s := range srcs {
		bounds = bounds.Union(s.Bounds())
	}
	fed, err := NewFederation(srcs, Config{Theta: 11, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	q := srcs[1].Datasets[3].Points

	rs, err := fed.OverlapSearch(q, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("federated overlap found nothing")
	}
	if rs[0].Source != "beta" || rs[0].ID != 3 {
		t.Errorf("best match should be the query's own dataset, got %+v", rs[0])
	}
	if fed.Metrics().Messages() == 0 {
		t.Error("no communication recorded")
	}

	cov, err := fed.CoverageSearch(q, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Coverage < cov.QueryCoverage {
		t.Error("coverage below query coverage")
	}

	if _, err := NewFederation(nil, Config{}); err == nil {
		t.Error("empty federation should error")
	}
}
