// Package core is the public facade of the DITS library: it wires the grid
// partition, the DITS indexes, the OJSP/CJSP search algorithms, and the
// multi-source federation behind two entry points.
//
//   - Engine answers joinable searches over a single data source.
//   - Federation coordinates many autonomous sources through a data
//     center, with real communication accounting.
//
// Queries are plain point sets; results identify datasets by ID and name.
package core

import (
	"context"
	"fmt"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/federation"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/search/coverage"
	"dits/internal/search/overlap"
	"dits/internal/transport"
)

// Config controls index construction. The zero value selects the paper's
// defaults (Table II): resolution θ=12 and leaf capacity f=30.
type Config struct {
	// Theta is the grid resolution: the space is cut into 2^θ × 2^θ cells.
	Theta int
	// LeafCapacity is f, the maximum datasets per DITS-L leaf.
	LeafCapacity int
	// Bounds optionally fixes the gridded space. When empty, the source's
	// own bounding rectangle is used. Federations must set Bounds so all
	// sources share one grid.
	Bounds geo.Rect
}

func (c Config) withDefaults() Config {
	if c.Theta == 0 {
		c.Theta = 12
	}
	if c.LeafCapacity == 0 {
		c.LeafCapacity = 30
	}
	return c
}

// Result is one joinable dataset: for overlap search, Score is
// |S_Q ∩ S_D|; for coverage search, the marginal coverage gain at pick
// time.
type Result struct {
	Source string // empty for single-source engines
	ID     int
	Name   string
	Score  int
}

// CoverageOutcome is the result of a coverage joinable search.
type CoverageOutcome struct {
	Results       []Result
	Coverage      int // cells covered by query ∪ picked datasets
	QueryCoverage int // cells covered by the query alone
}

// Engine answers OJSP and CJSP over a single data source.
type Engine struct {
	grid  geo.Grid
	index *dits.Local
}

// NewEngine grids and indexes the source.
func NewEngine(src *dataset.Source, cfg Config) (*Engine, error) {
	if src == nil {
		return nil, fmt.Errorf("core: nil source")
	}
	cfg = cfg.withDefaults()
	bounds := cfg.Bounds
	if boundsUnset(bounds) {
		bounds = src.Bounds()
	}
	g := geo.NewGrid(cfg.Theta, bounds)
	return &Engine{grid: g, index: dits.Build(g, src.Nodes(g), cfg.LeafCapacity)}, nil
}

// boundsUnset treats the zero rectangle (a dimensionless point at the
// origin) and truly empty rectangles as "no bounds configured".
func boundsUnset(r geo.Rect) bool {
	return r.IsEmpty() || r == geo.Rect{}
}

// Grid exposes the engine's grid, e.g. to interpret cell counts as areas.
func (e *Engine) Grid() geo.Grid { return e.grid }

// NumDatasets returns the number of indexed datasets.
func (e *Engine) NumDatasets() int { return e.index.Len() }

// queryNode converts raw points into a query dataset node.
func (e *Engine) queryNode(query []geo.Point) *dataset.Node {
	return dataset.NewNodeFromCells(-1, "query", cellset.FromPoints(e.grid, query))
}

// OverlapSearch returns the k datasets with the largest spatial overlap
// with the query points (OJSP), using OverlapSearch/Algorithm 2.
func (e *Engine) OverlapSearch(query []geo.Point, k int) []Result {
	q := e.queryNode(query)
	if q == nil {
		return nil
	}
	s := &overlap.DITSSearcher{Index: e.index}
	return convertOverlap(s.TopK(q, k))
}

// CoverageSearch returns up to k datasets maximizing joint coverage with
// the query under connectivity threshold delta, in cell units (CJSP),
// using CoverageSearch/Algorithm 3.
func (e *Engine) CoverageSearch(query []geo.Point, delta float64, k int) CoverageOutcome {
	q := e.queryNode(query)
	if q == nil {
		return CoverageOutcome{}
	}
	s := &coverage.DITSSearcher{Index: e.index}
	res := s.Search(q, delta, k)
	out := CoverageOutcome{Coverage: res.Coverage, QueryCoverage: res.QueryCoverage}
	covered := q.Cells
	for _, nd := range res.Picked {
		gain := covered.MarginalGain(nd.Cells)
		covered = covered.Union(nd.Cells)
		out.Results = append(out.Results, Result{ID: nd.ID, Name: nd.Name, Score: gain})
	}
	return out
}

// Insert adds a dataset to the live index.
func (e *Engine) Insert(d *dataset.Dataset) error {
	nd := dataset.NewNode(e.grid, d)
	if nd == nil {
		return fmt.Errorf("core: dataset %d has no points", d.ID)
	}
	return e.index.Insert(nd)
}

// Update replaces a dataset in the live index.
func (e *Engine) Update(d *dataset.Dataset) error {
	nd := dataset.NewNode(e.grid, d)
	if nd == nil {
		return fmt.Errorf("core: dataset %d has no points", d.ID)
	}
	return e.index.Update(nd)
}

// Delete removes a dataset from the live index.
func (e *Engine) Delete(id int) error { return e.index.Delete(id) }

func convertOverlap(rs []overlap.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Name: r.Name, Score: r.Overlap}
	}
	return out
}

// Federation coordinates joinable search across multiple autonomous
// sources through an in-process data center. All sources share the grid
// defined by Config.Bounds and Config.Theta.
type Federation struct {
	grid    geo.Grid
	center  *federation.Center
	servers []*federation.SourceServer
}

// NewFederation builds one SourceServer per source and registers them with
// a data center. Config.Bounds must cover all sources; when empty, the
// union of all source bounds is used.
func NewFederation(sources []*dataset.Source, cfg Config) (*Federation, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: federation needs at least one source")
	}
	cfg = cfg.withDefaults()
	bounds := cfg.Bounds
	if boundsUnset(bounds) {
		bounds = geo.EmptyRect
		for _, s := range sources {
			bounds = bounds.Union(s.Bounds())
		}
	}
	g := geo.NewGrid(cfg.Theta, bounds)
	center := federation.NewCenter(g, federation.DefaultOptions())
	f := &Federation{grid: g, center: center}
	for _, src := range sources {
		idx := dits.Build(g, src.Nodes(g), cfg.LeafCapacity)
		srv := federation.NewSourceServerWithGrid(src.Name, idx)
		f.servers = append(f.servers, srv)
		center.Register(srv.Summary(), &transport.InProc{
			Name: src.Name, Handler: srv.Handler(), Metrics: center.Metrics,
			Codec: federation.BinaryCodec,
		})
	}
	return f, nil
}

// Grid exposes the federation's shared grid.
func (f *Federation) Grid() geo.Grid { return f.grid }

// Metrics exposes the communication counters of the data center.
func (f *Federation) Metrics() *transport.Metrics { return f.center.Metrics }

// OverlapSearch answers the multi-source OJSP.
func (f *Federation) OverlapSearch(query []geo.Point, k int) ([]Result, error) {
	cells := cellset.FromPoints(f.grid, query)
	rs, err := f.center.OverlapSearch(context.Background(), cells, k)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{Source: r.Source, ID: r.ID, Name: r.Name, Score: r.Overlap}
	}
	return out, nil
}

// CoverageSearch answers the multi-source CJSP.
func (f *Federation) CoverageSearch(query []geo.Point, delta float64, k int) (CoverageOutcome, error) {
	cells := cellset.FromPoints(f.grid, query)
	res, err := f.center.CoverageSearch(context.Background(), cells, delta, k)
	if err != nil {
		return CoverageOutcome{}, err
	}
	out := CoverageOutcome{Coverage: res.Coverage, QueryCoverage: res.QueryCoverage}
	for _, r := range res.Picked {
		out.Results = append(out.Results, Result{Source: r.Source, ID: r.ID, Name: r.Name, Score: r.Overlap})
	}
	return out, nil
}
