package exec

import (
	"time"

	"dits/internal/dataset"
	"dits/internal/index/dits"
	"dits/internal/search/overlap"
)

// OverlapTrace is the cost profile of one sequential OJSP execution,
// decomposed the way the parallel executor schedules it: the serial prefix
// (filter walk + candidate sort) and one entry per verified leaf task, in
// the upper-bound order the tasks were claimed.
type OverlapTrace struct {
	Results  []overlap.Result
	SerialNs float64   // filter walk + sort + result merge
	TaskNs   []float64 // per-leaf verification costs, in schedule order
}

// TraceOverlap runs the sequential execution with per-task timing. The
// results are identical to the plain sequential searcher; the trace feeds
// the work-span model below, which `ditsbench -exp exec` uses to report
// what a W-worker pool makes of this schedule independent of how many
// CPUs the benchmarking host happens to have.
func TraceOverlap(idx *dits.Local, q *dataset.Node, k int) OverlapTrace {
	var tr OverlapTrace
	if q == nil || k <= 0 || idx == nil || idx.Root == nil {
		return tr
	}
	start := time.Now()
	cands := sortLeaves(collectLeaves(idx.Root, q, nil))
	tr.SerialNs = float64(time.Since(start).Nanoseconds())
	qc := newQueryCtx(q)
	t := newStripedTopK(k, 1)
	var scratch []int
	for _, c := range cands {
		if c.ub < t.threshold() {
			break
		}
		ts := time.Now()
		scratch = verifyLeaf(t, 0, c, qc, scratch)
		tr.TaskNs = append(tr.TaskNs, float64(time.Since(ts).Nanoseconds()))
	}
	start = time.Now()
	tr.Results = t.ranked()
	tr.SerialNs += float64(time.Since(start).Nanoseconds())
	return tr
}

// ModelMakespan computes the work-span estimate of executing a traced
// schedule on w workers: tasks are claimed in order by the
// earliest-available worker (exactly the executor's atomic-cursor
// discipline), and the returned nanoseconds are the serial prefix plus the
// longest worker's finish time. On a host with at least w CPUs the
// measured wall clock converges to this; on fewer CPUs it reports the
// parallelism the schedule exposes rather than the parallelism the host
// can spend.
func ModelMakespan(tr OverlapTrace, w int) float64 {
	if w < 1 {
		w = 1
	}
	ends := make([]float64, w)
	for _, t := range tr.TaskNs {
		// Earliest-available worker claims the next task.
		mi := 0
		for i := 1; i < w; i++ {
			if ends[i] < ends[mi] {
				mi = i
			}
		}
		ends[mi] += t
	}
	makespan := 0.0
	for _, e := range ends {
		if e > makespan {
			makespan = e
		}
	}
	return tr.SerialNs + makespan
}
