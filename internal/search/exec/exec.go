// Package exec is the query-execution engine layered over the DITS-L
// searchers: it parallelizes a single OJSP/CJSP traversal across a bounded
// worker pool and executes batches of queries in one shared pass over the
// tree, while producing results byte-identical to the sequential
// `search/overlap` and `search/coverage` paths (enforced by differential
// tests and the `ditsbench -exp exec` harness).
//
// # Concurrency and ownership contracts
//
// The executor treats the index as frozen: a *dits.Local and every
// *dataset.Node reachable from it are READ-ONLY for the duration of a
// call. Callers must not run index mutations (Insert/Delete/Update)
// concurrently with an executor call — the same contract the sequential
// searchers have. Cell sets are consumed through CompactCells, which never
// mutates a node.
//
// Workers own no shared state except the striped top-k accumulator: each
// worker offers results into its own mutex-guarded stripe, and the only
// cross-worker communication is a monotonically increasing atomic prune
// threshold (a safe lower bound on the final k-th best score, so pruning
// against it can never discard a true result — see stripedTopK). Task
// distribution is an atomic cursor over a slice ordered by the Lemma 2/3
// upper bounds, so the most promising subtrees are verified first and the
// threshold rises as fast as it does sequentially.
//
// An Executor itself is stateless and safe for concurrent use by any
// number of goroutines; Workers only bounds the pool of one call.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dits/internal/search/overlap"
)

// Executor runs parallel and batched DITS-L query execution. The zero
// value is ready to use and sizes its pool to GOMAXPROCS.
type Executor struct {
	// Workers bounds the worker pool of one call. Zero or negative means
	// GOMAXPROCS; one selects the sequential in-line path (no goroutines).
	Workers int
}

// workers resolves the effective pool size.
func (e *Executor) workers() int {
	if e != nil && e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runWorkers runs fn(0..n-1) on n goroutines and returns when all have
// finished — callers never leak workers, even on context cancellation,
// because cancelled workers still return through this join.
func runWorkers(n int, fn func(w int)) {
	if n <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// resultHeap is a min-heap of overlap results whose head is the weakest
// kept result, under the shared overlap.Better ranking. The sift
// operations are hand-rolled rather than container/heap so pushing a
// result never boxes it into an interface — offer runs for every
// positive count of every verified leaf, and with the stripe storage
// pre-sized to k it allocates nothing.
type resultHeap []overlap.Result

func (h resultHeap) less(i, j int) bool { return overlap.Better(h[j], h[i]) }

func (h *resultHeap) push(r overlap.Result) {
	*h = append(*h, r)
	h.up(len(*h) - 1)
}

func (h resultHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h resultHeap) down(i int) {
	n := len(h)
	for {
		j := 2*i + 1
		if j >= n {
			return
		}
		if j2 := j + 1; j2 < n && h.less(j2, j) {
			j = j2
		}
		if !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// topKStripe is one mutex-guarded shard of the shared top-k state.
type topKStripe struct {
	mu sync.Mutex
	h  resultHeap
	_  [32]byte // pad to a cache line so stripes don't false-share
}

// stripedTopK is the workers' shared top-k accumulator: each worker offers
// into its own stripe (no cross-worker lock contention), and stripes
// publish their k-th best score into a shared atomic threshold.
//
// Safety of pruning against thresh: a stripe holding k results has a k-th
// best score s; the k-th best of the union of all stripes is ≥ s, and the
// final k-th best only grows as more results are offered. So thresh — the
// maximum s over stripes — is always ≤ the final k-th best score, and a
// candidate with upper bound strictly below thresh can never enter the
// final top-k (a tie at the threshold is kept, so ID tie-breaks are
// unaffected). Pruned work is work the sequential pass would have pruned
// later anyway; results are identical either way.
type stripedTopK struct {
	k       int
	stripes []topKStripe
	thresh  atomic.Int64
}

// newStripedTopK creates the accumulator with n stripes.
func newStripedTopK(k, n int) *stripedTopK {
	if n < 1 {
		n = 1
	}
	return &stripedTopK{k: k, stripes: make([]topKStripe, n)}
}

// threshold returns the current safe prune bound: candidates whose upper
// bound is strictly below it cannot enter the final top-k.
func (t *stripedTopK) threshold() int { return int(t.thresh.Load()) }

// offer inserts r into worker w's stripe if it can still matter.
func (t *stripedTopK) offer(w int, r overlap.Result) {
	if r.Overlap <= 0 || r.Overlap < t.threshold() {
		return
	}
	s := &t.stripes[w%len(t.stripes)]
	s.mu.Lock()
	kth := 0
	switch {
	case len(s.h) < t.k:
		if s.h == nil {
			// Sized once so pushes never regrow, but capped: k is
			// wire-supplied, and a hostile k must not pre-allocate.
			c := min(t.k, 1024)
			s.h = make(resultHeap, 0, c)
		}
		s.h.push(r)
		if len(s.h) == t.k {
			kth = s.h[0].Overlap
		}
	case overlap.Better(r, s.h[0]):
		s.h[0] = r
		s.h.down(0)
		kth = s.h[0].Overlap
	}
	s.mu.Unlock()
	for {
		cur := t.thresh.Load()
		if int64(kth) <= cur || t.thresh.CompareAndSwap(cur, int64(kth)) {
			return
		}
	}
}

// ranked merges all stripes and returns the global top-k, best-first — the
// same output the sequential searcher produces. No further offers may be
// in flight.
func (t *stripedTopK) ranked() []overlap.Result {
	var all []overlap.Result
	for i := range t.stripes {
		all = append(all, t.stripes[i].h...)
	}
	overlap.SortResults(all)
	if len(all) > t.k {
		all = all[:t.k]
	}
	return all
}
