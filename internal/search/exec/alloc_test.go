package exec

import (
	"math/rand"
	"testing"
)

// TestVerifyLoopZeroAlloc: after warm-up (scratch grown, stripe heap
// sized) the per-leaf verification loop — bound check, counting kernel,
// top-k offers — must run allocation-free. This is the loop every worker
// spins in for the whole verification phase of a query.
func TestVerifyLoopZeroAlloc(t *testing.T) {
	idx, nodes := buildWorld(t, 200, 8, 6, 11)
	q := queryFrom(rand.New(rand.NewSource(9)), nodes)
	cands := sortLeaves(collectLeaves(idx.Root, q, nil))
	if len(cands) == 0 {
		t.Fatal("query reached no leaves")
	}
	qc := newQueryCtx(q)
	topk := newStripedTopK(5, 1)
	var scratch []int
	// Warm-up sweep: grows the scratch to the widest leaf and fills the
	// stripe heap to k.
	for _, c := range cands {
		scratch = verifyLeaf(topk, 0, c, qc, scratch)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		for _, c := range cands {
			scratch = verifyLeaf(topk, 0, c, qc, scratch)
		}
	}); allocs != 0 {
		t.Errorf("warm verification sweep allocated %.1f times", allocs)
	}
}
