package exec

import (
	"cmp"
	"context"
	"slices"
	"sync/atomic"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/index/dits"
	"dits/internal/search/overlap"
)

// minParallelLeaves is the candidate count below which OverlapTopK stays
// on the in-line sequential path: with only a handful of leaves to verify,
// goroutine startup costs more than it saves.
const minParallelLeaves = 4

// leafCand is a DITS-L leaf that survived MBR pruning, with its free upper
// bound min(|S_Q|, MaxCells). Identical to the sequential searcher's
// candidate unit; the executor only changes who verifies it, not what is
// verified.
type leafCand struct {
	leaf *dits.TreeNode
	ub   int
}

// collectLeaves is the filter step of Algorithm 2 (internal-node MBR
// pruning): the leaves intersecting the query MBR, each with its free
// upper bound. It appends to dst so batch execution can reuse one walk.
func collectLeaves(root *dits.TreeNode, q *dataset.Node, dst []leafCand) []leafCand {
	qn := q.Coverage()
	var walk func(n *dits.TreeNode)
	walk = func(n *dits.TreeNode) {
		if n == nil || !n.Rect.Intersects(q.Rect) {
			return
		}
		if !n.IsLeaf() {
			walk(n.Left)
			walk(n.Right)
			return
		}
		ub := n.MaxCells
		if qn < ub {
			ub = qn
		}
		if ub > 0 {
			dst = append(dst, leafCand{leaf: n, ub: ub})
		}
	}
	walk(root)
	return dst
}

// sortLeaves orders candidates by decreasing upper bound — the
// verification order that raises the prune threshold fastest — and
// returns the slice.
func sortLeaves(cands []leafCand) []leafCand {
	slices.SortFunc(cands, func(a, b leafCand) int { return cmp.Compare(b.ub, a.ub) })
	return cands
}

// sparseDensity is the cells-per-chunk threshold below which a query is
// verified with the posting-list kernel. The chunk kernel's word-parallel
// advantage needs dense (bitmap) chunks — real clustered datasets sit
// around 30–170 cells per chunk, where repeating a sparse chunk merge per
// leaf child loses to one posting pass; synthetic dense patches sit in the
// thousands, where the chunk kernel wins by an order of magnitude. The
// two kernels return identical counts, so this is purely a cost choice.
const sparseDensity = 512

// minKernelChildren is the leaf size below which the posting kernel is
// not worth it: with very few children the chunk kernel's per-child cost
// is already minimal.
const minKernelChildren = 4

// queryCtx is the per-query state a verification task needs: both cell
// forms plus the precomputed kernel choice.
type queryCtx struct {
	qc     *cellset.Compact
	flat   cellset.Set
	sparse bool // posting-list kernel preferred
}

// newQueryCtx precomputes the kernel choice for one query.
func newQueryCtx(q *dataset.Node) *queryCtx {
	qc := q.CompactCells()
	return &queryCtx{
		qc:     qc,
		flat:   q.Cells,
		sparse: len(q.Cells) > 0 && qc.Len() < sparseDensity*qc.NumChunks(),
	}
}

// verifyLeaf runs the Lemma 2 bound check and, if it survives, the exact
// per-dataset counting of one leaf, offering positive overlaps into the
// shared top-k. It is the unit of work a worker executes. The counting
// kernel is chosen adaptively: sparse queries take the posting-list pass
// (one min(|q|, |Inv|) sweep shared by every child), dense queries the
// word-parallel chunk merge per child. The count buffer is the caller's
// scratch, reused across every leaf a worker verifies (returned possibly
// regrown) — after warm-up the loop allocates nothing.
func verifyLeaf(t *stripedTopK, w int, c leafCand, q *queryCtx, scratch []int) []int {
	th := t.threshold()
	if ub := c.leaf.OverlapUBCompact(q.qc); ub == 0 || ub < th {
		return scratch
	}
	if q.sparse && len(c.leaf.Children) >= minKernelChildren {
		scratch = c.leaf.AppendOverlapCounts(q.flat, scratch)
	} else {
		scratch = c.leaf.AppendOverlapCountsCompact(q.qc, scratch)
	}
	for i, d := range c.leaf.Children {
		if scratch[i] > 0 {
			t.offer(w, overlap.Result{ID: d.ID, Name: d.Name, Overlap: scratch[i]})
		}
	}
	return scratch
}

// OverlapTopK answers one OJSP query (Algorithm 2) over the index,
// verifying candidate leaves on the executor's worker pool. Results are
// identical to (*overlap.DITSSearcher).TopK; only the wall-clock changes.
// On context cancellation it returns ctx.Err() with no results and no
// leaked goroutines.
func (e *Executor) OverlapTopK(ctx context.Context, idx *dits.Local, q *dataset.Node, k int) ([]overlap.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if q == nil || k <= 0 || idx == nil || idx.Root == nil {
		return nil, nil
	}
	cands := sortLeaves(collectLeaves(idx.Root, q, nil))
	return e.verifyCands(ctx, cands, newQueryCtx(q), k)
}

// verifyCands drives the ordered verification of one query's candidate
// leaves across the pool.
func (e *Executor) verifyCands(ctx context.Context, cands []leafCand, qc *queryCtx, k int) ([]overlap.Result, error) {
	w := e.workers()
	if w == 1 || len(cands) < minParallelLeaves {
		return verifySequential(ctx, cands, qc, k)
	}
	nstripes := w
	if nstripes > 8 {
		nstripes = 8
	}
	t := newStripedTopK(k, nstripes)
	var (
		cursor    atomic.Int64
		exhausted atomic.Bool // prune threshold beat the remaining bounds
		cancelled atomic.Bool
	)
	runWorkers(w, func(wk int) {
		var scratch []int // per-worker count buffer, reused leaf to leaf
		for !exhausted.Load() && !cancelled.Load() {
			i := int(cursor.Add(1)) - 1
			if i >= len(cands) {
				return
			}
			if i%16 == 0 && ctx.Err() != nil {
				cancelled.Store(true)
				return
			}
			c := cands[i]
			if c.ub < t.threshold() {
				// cands is sorted by ub: every later leaf is bounded even
				// lower, so the whole pool can stop claiming tasks.
				exhausted.Store(true)
				return
			}
			scratch = verifyLeaf(t, wk, c, qc, scratch)
		}
	})
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	return t.ranked(), nil
}

// verifySequential is the in-line path, structured exactly like the
// sequential searcher's verification loop (shared prune logic, one
// stripe).
func verifySequential(ctx context.Context, cands []leafCand, qc *queryCtx, k int) ([]overlap.Result, error) {
	t := newStripedTopK(k, 1)
	var scratch []int
	for i, c := range cands {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if c.ub < t.threshold() {
			break
		}
		scratch = verifyLeaf(t, 0, c, qc, scratch)
	}
	return t.ranked(), nil
}
