package exec

import (
	"cmp"
	"context"
	"slices"
	"sync/atomic"

	"dits/internal/dataset"
	"dits/internal/index/dits"
	"dits/internal/search/overlap"
)

// BatchQuery is one OJSP query of a batch: its query node and its own k.
type BatchQuery struct {
	Q *dataset.Node
	K int
}

// batchLeaf is one DITS-L leaf together with the batch queries active at
// it: the queries whose MBR reached the leaf during the single shared
// walk, each with its free upper bound at this leaf.
type batchLeaf struct {
	leaf  *dits.TreeNode
	qis   []int32 // indices into the batch
	ubs   []int32 // free upper bound per active query
	maxUB int     // max over ubs, for leaf ordering
}

// OverlapTopKBatch answers a batch of OJSP queries in one pass over the
// index. The tree is walked ONCE for the whole batch — each internal
// node's MBR test runs against all queries still active in that subtree —
// and verification is leaf-major: a leaf's compact summaries and child
// cell sets are visited once per batch, answering every query active at
// the leaf back-to-back while the containers are cache-hot, instead of
// once per query. Queries whose cells land in the same tree regions
// therefore share all node work, which is where the batched speedup
// comes from.
//
// Results are identical, query by query, to running each query alone
// (enforced by the differential tests and the exec bench): every query
// keeps its own top-k heap and prunes only against its own threshold, a
// safe lower bound of its final k-th best. The returned slice aligns with
// the input; a nil or empty query yields a nil entry. On cancellation it
// returns ctx.Err() with no results and no leaked goroutines.
func (e *Executor) OverlapTopKBatch(ctx context.Context, idx *dits.Local, batch []BatchQuery) ([][]overlap.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([][]overlap.Result, len(batch))
	if idx == nil || idx.Root == nil || len(batch) == 0 {
		return out, nil
	}

	// Per-query execution state, only for usable queries.
	type qstate struct {
		qc  *queryCtx
		t   *stripedTopK
		cov int
	}
	states := make([]*qstate, len(batch))
	active := make([]int32, 0, len(batch))
	for i, bq := range batch {
		if bq.Q == nil || bq.K <= 0 || bq.Q.Coverage() == 0 {
			continue
		}
		states[i] = &qstate{qc: newQueryCtx(bq.Q), t: newStripedTopK(bq.K, 1), cov: bq.Q.Coverage()}
		active = append(active, int32(i))
	}
	if len(active) == 0 {
		return out, nil
	}

	// One shared walk: at each internal node the active set is filtered by
	// MBR intersection, so a subtree no query reaches is descended zero
	// times, and a subtree B queries reach is descended once, not B times.
	var leaves []batchLeaf
	var walk func(n *dits.TreeNode, act []int32)
	walk = func(n *dits.TreeNode, act []int32) {
		if n == nil {
			return
		}
		surv := make([]int32, 0, len(act))
		for _, qi := range act {
			if n.Rect.Intersects(batch[qi].Q.Rect) {
				surv = append(surv, qi)
			}
		}
		if len(surv) == 0 {
			return
		}
		if !n.IsLeaf() {
			walk(n.Left, surv)
			walk(n.Right, surv)
			return
		}
		bl := batchLeaf{leaf: n, qis: make([]int32, 0, len(surv)), ubs: make([]int32, 0, len(surv))}
		for _, qi := range surv {
			ub := n.MaxCells
			if c := states[qi].cov; c < ub {
				ub = c
			}
			if ub > 0 {
				bl.qis = append(bl.qis, qi)
				bl.ubs = append(bl.ubs, int32(ub))
				if ub > bl.maxUB {
					bl.maxUB = ub
				}
			}
		}
		if len(bl.qis) > 0 {
			leaves = append(leaves, bl)
		}
	}
	walk(idx.Root, active)

	// Leaf-major verification in decreasing max-bound order, so every
	// query's threshold rises early and later leaves are skipped per query
	// by the same Lemma 2 logic as the single-query path.
	slices.SortFunc(leaves, func(a, b batchLeaf) int { return cmp.Compare(b.maxUB, a.maxUB) })
	var (
		cursor    atomic.Int64
		cancelled atomic.Bool
	)
	w := e.workers()
	if len(leaves) < minParallelLeaves {
		w = 1
	}
	runWorkers(w, func(wk int) {
		var scratch []int // per-worker count buffer, reused leaf to leaf
		for !cancelled.Load() {
			li := int(cursor.Add(1)) - 1
			if li >= len(leaves) {
				return
			}
			if li%8 == 0 && ctx.Err() != nil {
				cancelled.Store(true)
				return
			}
			bl := leaves[li]
			for j, qi := range bl.qis {
				st := states[qi]
				if int(bl.ubs[j]) < st.t.threshold() {
					continue // this query can no longer gain from this leaf
				}
				scratch = verifyLeaf(st.t, 0, leafCand{leaf: bl.leaf, ub: int(bl.ubs[j])}, st.qc, scratch)
			}
		}
	})
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	for i, st := range states {
		if st != nil {
			out[i] = st.t.ranked()
		}
	}
	return out, nil
}
