package exec

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/search/coverage"
	"dits/internal/search/overlap"
)

// buildWorld generates n clustered datasets on a 2^theta grid and indexes
// them, returning the index and the nodes. Deterministic per seed.
func buildWorld(t testing.TB, n, theta, f int, seed int64) (*dits.Local, []*dataset.Node) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	side := 1 << uint(theta)
	nodes := make([]*dataset.Node, 0, n)
	for i := 0; i < n; i++ {
		// A dense square patch of cells at a random position, sometimes
		// overlapping earlier patches (z-order clustering).
		blk := 4 + rng.Intn(12)
		bx, by := rng.Intn(side-blk), rng.Intn(side-blk)
		var ids []uint64
		for dx := 0; dx < blk; dx++ {
			for dy := 0; dy < blk; dy++ {
				if rng.Intn(3) > 0 {
					ids = append(ids, geo.ZEncode(uint32(bx+dx), uint32(by+dy)))
				}
			}
		}
		if nd := dataset.NewNodeFromCells(i, "", cellset.New(ids...)); nd != nil {
			nodes = append(nodes, nd)
		}
	}
	g := geo.NewGrid(1, geo.Rect{MinX: 0, MinY: 0, MaxX: float64(side), MaxY: float64(side)})
	return dits.Build(g, nodes, f), nodes
}

// queryFrom builds a query node overlapping some of the world's nodes.
func queryFrom(rng *rand.Rand, nodes []*dataset.Node) *dataset.Node {
	q := nodes[rng.Intn(len(nodes))].Cells
	for j := 0; j < rng.Intn(3); j++ {
		q = q.Union(nodes[rng.Intn(len(nodes))].Cells)
	}
	return dataset.NewNodeFromCells(-1, "query", q)
}

// TestOverlapParity is the differential test of the tentpole: over many
// fuzzed workloads, the parallel executor at several worker counts and the
// batched executor must return byte-identical results to the sequential
// searcher.
func TestOverlapParity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		idx, nodes := buildWorld(t, 120, 8, 5, seed)
		rng := rand.New(rand.NewSource(seed * 77))
		seq := &overlap.DITSSearcher{Index: idx}
		var batch []BatchQuery
		var want [][]overlap.Result
		for qi := 0; qi < 12; qi++ {
			q := queryFrom(rng, nodes)
			k := 1 + rng.Intn(8)
			exp := seq.TopK(q, k)
			batch = append(batch, BatchQuery{Q: q, K: k})
			want = append(want, exp)
			for _, w := range []int{1, 2, 4, 8} {
				e := &Executor{Workers: w}
				got, err := e.OverlapTopK(context.Background(), idx, q, k)
				if err != nil {
					t.Fatalf("seed %d workers %d: %v", seed, w, err)
				}
				if !reflect.DeepEqual(got, exp) {
					t.Fatalf("seed %d workers %d k %d: parallel %v != sequential %v", seed, w, k, got, exp)
				}
			}
		}
		for _, w := range []int{1, 4} {
			e := &Executor{Workers: w}
			got, err := e.OverlapTopKBatch(context.Background(), idx, batch)
			if err != nil {
				t.Fatalf("seed %d: batch: %v", seed, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d workers %d: batch diverged from sequential", seed, w)
			}
		}
	}
}

// TestBatchOfOneEqualsSingle pins the edge case the gateway depends on: a
// batch of size 1 is exactly the single-query path.
func TestBatchOfOneEqualsSingle(t *testing.T) {
	idx, nodes := buildWorld(t, 80, 8, 5, 3)
	rng := rand.New(rand.NewSource(9))
	e := &Executor{Workers: 4}
	for i := 0; i < 10; i++ {
		q := queryFrom(rng, nodes)
		single, err := e.OverlapTopK(context.Background(), idx, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := e.OverlapTopKBatch(context.Background(), idx, []BatchQuery{{Q: q, K: 5}})
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != 1 || !reflect.DeepEqual(batch[0], single) {
			t.Fatalf("batch of one %v != single %v", batch, single)
		}
	}
}

// TestKLargerThanCandidates: k exceeding the number of joinable datasets
// returns every positive-overlap dataset, ranked, in every execution mode.
func TestKLargerThanCandidates(t *testing.T) {
	idx, nodes := buildWorld(t, 30, 8, 4, 11)
	q := queryFrom(rand.New(rand.NewSource(2)), nodes)
	seq := (&overlap.DITSSearcher{Index: idx}).TopK(q, 10_000)
	for _, w := range []int{1, 4} {
		e := &Executor{Workers: w}
		got, err := e.OverlapTopK(context.Background(), idx, q, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, seq) {
			t.Fatalf("workers %d: k>candidates diverged: %d vs %d results", w, len(got), len(seq))
		}
		b, err := e.OverlapTopKBatch(context.Background(), idx, []BatchQuery{{Q: q, K: 10_000}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(b[0], seq) {
			t.Fatalf("workers %d: batched k>candidates diverged", w)
		}
	}
}

// TestDegenerateInputs covers nil/empty inputs in all modes.
func TestDegenerateInputs(t *testing.T) {
	idx, nodes := buildWorld(t, 20, 8, 4, 5)
	e := &Executor{Workers: 4}
	ctx := context.Background()
	if rs, err := e.OverlapTopK(ctx, idx, nil, 5); err != nil || rs != nil {
		t.Fatalf("nil query: %v %v", rs, err)
	}
	if rs, err := e.OverlapTopK(ctx, idx, nodes[0], 0); err != nil || rs != nil {
		t.Fatalf("k=0: %v %v", rs, err)
	}
	if rs, err := e.OverlapTopK(ctx, nil, nodes[0], 5); err != nil || rs != nil {
		t.Fatalf("nil index: %v %v", rs, err)
	}
	out, err := e.OverlapTopKBatch(ctx, idx, []BatchQuery{{Q: nil, K: 5}, {Q: nodes[0], K: 0}})
	if err != nil || len(out) != 2 || out[0] != nil || out[1] != nil {
		t.Fatalf("degenerate batch: %v %v", out, err)
	}
	if res, err := e.CoverageSearch(ctx, idx, nil, 5, 3); err != nil || res.Picked != nil {
		t.Fatalf("nil coverage query: %+v %v", res, err)
	}
}

// TestCancelledContextLeaksNoGoroutines launches heavy queries, cancels
// mid-traversal, and asserts (a) the calls return ctx.Err() and (b) the
// goroutine count settles back to the baseline — the worker pool always
// joins. Run under -race in CI.
func TestCancelledContextLeaksNoGoroutines(t *testing.T) {
	idx, nodes := buildWorld(t, 300, 9, 4, 7)
	rng := rand.New(rand.NewSource(13))
	var batch []BatchQuery
	for i := 0; i < 64; i++ {
		batch = append(batch, BatchQuery{Q: queryFrom(rng, nodes), K: 5})
	}
	before := runtime.NumGoroutine()
	e := &Executor{Workers: 8}
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err1 := e.OverlapTopKBatch(ctx, idx, batch)
			_, err2 := e.CoverageSearchBatch(ctx, idx, []*dataset.Node{batch[0].Q, batch[1].Q}, 4, 3)
			if err1 != nil {
				done <- err1
				return
			}
			done <- err2
		}()
		// Cancel at a random point: sometimes before, sometimes mid-run.
		time.Sleep(time.Duration(rng.Intn(400)) * time.Microsecond)
		cancel()
		err := <-done
		if err != nil && err != context.Canceled {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	// Workers are joined before the calls return, so any surplus is a bug.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	// An already-cancelled context must fail fast with no results.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if rs, err := e.OverlapTopK(ctx, idx, batch[0].Q, 5); err != context.Canceled || rs != nil {
		t.Fatalf("pre-cancelled: %v %v", rs, err)
	}
}

// TestCoverageParity: the parallel coverage search must reproduce the
// sequential Algorithm 3 exactly — same picks, same order, same coverage.
func TestCoverageParity(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		idx, nodes := buildWorld(t, 100, 8, 5, seed)
		rng := rand.New(rand.NewSource(seed * 31))
		seq := &coverage.DITSSearcher{Index: idx}
		for qi := 0; qi < 6; qi++ {
			q := queryFrom(rng, nodes)
			delta := float64(rng.Intn(12))
			k := 1 + rng.Intn(6)
			want := seq.Search(q, delta, k)
			for _, w := range []int{1, 2, 8} {
				e := &Executor{Workers: w}
				got, err := e.CoverageSearch(context.Background(), idx, q, delta, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.IDs(), want.IDs()) || got.Coverage != want.Coverage {
					t.Fatalf("seed %d workers %d δ=%v k=%d: parallel %v/%d != sequential %v/%d",
						seed, w, delta, k, got.IDs(), got.Coverage, want.IDs(), want.Coverage)
				}
			}
			batchRes, err := (&Executor{Workers: 4}).CoverageSearchBatch(
				context.Background(), idx, []*dataset.Node{q}, delta, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(batchRes[0].IDs(), want.IDs()) {
				t.Fatalf("seed %d: coverage batch of one diverged", seed)
			}
		}
	}
}

// TestFindConnectSetParity: the task-split walk must return the same
// datasets in the same DFS order as the sequential walk.
func TestFindConnectSetParity(t *testing.T) {
	idx, nodes := buildWorld(t, 150, 8, 4, 21)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 8; i++ {
		q := queryFrom(rng, nodes)
		delta := float64(rng.Intn(15))
		want := coverage.FindConnectSet(idx.Root, q, delta)
		for _, w := range []int{2, 8} {
			e := &Executor{Workers: w}
			got := e.FindConnectSet(context.Background(), idx.Root, q, delta, cellset.NewDistIndex(q.Cells, delta))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers %d δ=%v: connect set diverged: %d vs %d", w, delta, len(got), len(want))
			}
		}
	}
}

// FuzzOverlapParity fuzzes the query shape: arbitrary bytes become query
// cells; parallel and batched execution must match the sequential
// searcher on every input.
func FuzzOverlapParity(f *testing.F) {
	idx, nodes := buildWorld(f, 60, 8, 5, 2)
	f.Add([]byte{1, 2, 3, 4, 200, 17}, uint8(5))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{255, 255, 0, 0, 9}, uint8(40))
	_ = nodes
	f.Fuzz(func(t *testing.T, raw []byte, kb uint8) {
		k := int(kb%16) + 1
		var ids []uint64
		for i := 0; i+1 < len(raw); i += 2 {
			x, y := uint32(raw[i]), uint32(raw[i+1])
			ids = append(ids, geo.ZEncode(x, y))
		}
		q := dataset.NewNodeFromCells(-1, "fuzz", cellset.New(ids...))
		if q == nil {
			return
		}
		want := (&overlap.DITSSearcher{Index: idx}).TopK(q, k)
		for _, w := range []int{1, 4} {
			got, err := (&Executor{Workers: w}).OverlapTopK(context.Background(), idx, q, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers %d: %v != %v", w, got, want)
			}
		}
		b, err := (&Executor{Workers: 4}).OverlapTopKBatch(context.Background(), idx, []BatchQuery{{Q: q, K: k}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(b[0], want) {
			t.Fatalf("batched: %v != %v", b[0], want)
		}
	})
}

// TestTraceOverlapParity: the instrumented trace must return the same
// results as the sequential searcher, and its model must be sane.
func TestTraceOverlapParity(t *testing.T) {
	idx, nodes := buildWorld(t, 120, 8, 5, 6)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 8; i++ {
		q := queryFrom(rng, nodes)
		want := (&overlap.DITSSearcher{Index: idx}).TopK(q, 5)
		tr := TraceOverlap(idx, q, 5)
		if !reflect.DeepEqual(tr.Results, want) {
			t.Fatalf("trace results diverged from sequential")
		}
		seq := ModelMakespan(tr, 1)
		par := ModelMakespan(tr, 8)
		if par > seq {
			t.Fatalf("8-worker makespan %v exceeds sequential %v", par, seq)
		}
		var total float64
		for _, ns := range tr.TaskNs {
			total += ns
		}
		if got := ModelMakespan(tr, 1); got != tr.SerialNs+total {
			t.Fatalf("1-worker makespan %v != serial+work %v", got, tr.SerialNs+total)
		}
	}
}
