package exec

import (
	"context"
	"sync/atomic"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/index/dits"
	"dits/internal/search/coverage"
)

// connectTaskFactor sizes the subtree task list of a parallel
// FindConnectSet: the frontier is expanded until it holds about this many
// tasks per worker, so the pool stays busy even when subtree costs skew.
const connectTaskFactor = 4

// FindConnectSet is coverage.FindConnectSetWithIndex executed across the
// worker pool: the tree is split into a DFS-ordered frontier of subtree
// tasks and each task runs the sequential walk independently. The result
// set and its order are identical to the sequential walk — every accept /
// prune / verify decision is made from a subtree's own (valid) bounds, and
// the exact leaf-level checks are shared — so callers can swap the two
// freely. qIdx is read concurrently and must not be mutated during the
// call (the greedy loops alternate search and growth, never overlap them).
func (e *Executor) FindConnectSet(ctx context.Context, root *dits.TreeNode, q *dataset.Node, delta float64, qIdx *cellset.DistIndex) []*dataset.Node {
	w := e.workers()
	if w == 1 || root == nil {
		return coverage.FindConnectSetWithIndex(root, q, delta, qIdx)
	}
	// DFS-ordered frontier: concatenating per-task results in task order
	// reproduces the sequential DFS output order exactly.
	target := connectTaskFactor * w
	tasks := []*dits.TreeNode{root}
	for len(tasks) < target {
		split := -1
		for i, n := range tasks {
			if !n.IsLeaf() {
				split = i
				break
			}
		}
		if split < 0 {
			break
		}
		n := tasks[split]
		tasks = append(tasks[:split:split], append([]*dits.TreeNode{n.Left, n.Right}, tasks[split+1:]...)...)
	}
	outs := make([][]*dataset.Node, len(tasks))
	var cursor atomic.Int64
	runWorkers(w, func(wk int) {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(tasks) || ctx.Err() != nil {
				return
			}
			outs[i] = coverage.FindConnectSetWithIndex(tasks[i], q, delta, qIdx)
		}
	})
	var out []*dataset.Node
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}

// pickBestChunk is the candidates-per-task grain of PickBest: big enough
// to amortize cursor traffic, small enough to balance skewed gains.
const pickBestChunk = 16

// PickBest selects the candidate with the maximum marginal gain over
// covered, excluding IDs for which excluded returns true, with the
// smallest-ID tie-break every sequential picker uses. Gains are computed
// across the worker pool; the pick is identical to the sequential scan
// because the reduction is by the total order (gain desc, ID asc) and the
// size filter (|S_D| < best gain so far ⇒ cannot win) only skips exact
// computations, never changes the winner. The shared best-gain bound is a
// monotone atomic, so a worker filtering against it can only under-filter
// relative to the sequential pass, never over-filter.
func (e *Executor) PickBest(ctx context.Context, cands []*dataset.Node, excluded func(id int) bool, covered *cellset.Compact) (*dataset.Node, int) {
	w := e.workers()
	if w == 1 || len(cands) <= pickBestChunk {
		return pickBestSeq(cands, excluded, covered)
	}
	type pick struct {
		best *dataset.Node
		gain int
	}
	nchunks := (len(cands) + pickBestChunk - 1) / pickBestChunk
	picks := make([]pick, nchunks)
	var cursor atomic.Int64
	var bound atomic.Int64 // best gain seen anywhere, for the size filter
	runWorkers(w, func(wk int) {
		for {
			ci := int(cursor.Add(1)) - 1
			if ci >= nchunks || ctx.Err() != nil {
				return
			}
			lo := ci * pickBestChunk
			hi := min(lo+pickBestChunk, len(cands))
			best, gain := (*dataset.Node)(nil), -1
			for _, nd := range cands[lo:hi] {
				if nd == nil || excluded(nd.ID) {
					continue
				}
				// The size filter stays strict (<) against the best gain
				// seen anywhere, so a candidate tying the global best is
				// still computed and the ID tie-break stays exact.
				filter := gain
				if t := int(bound.Load()); t > filter {
					filter = t
				}
				if nd.Coverage() < filter {
					continue
				}
				g := covered.MarginalGain(nd.CompactCells())
				if g > gain || (g == gain && best != nil && nd.ID < best.ID) {
					best, gain = nd, g
					for {
						cur := bound.Load()
						if int64(g) <= cur || bound.CompareAndSwap(cur, int64(g)) {
							break
						}
					}
				}
			}
			picks[ci] = pick{best: best, gain: gain}
		}
	})
	var best *dataset.Node
	gain := -1
	for _, p := range picks {
		if p.best == nil {
			continue
		}
		if p.gain > gain || (p.gain == gain && (best == nil || p.best.ID < best.ID)) {
			best, gain = p.best, p.gain
		}
	}
	return best, gain
}

// pickBestSeq is the sequential scan, identical to the pickers in
// search/coverage and federation.
func pickBestSeq(cands []*dataset.Node, excluded func(id int) bool, covered *cellset.Compact) (*dataset.Node, int) {
	var best *dataset.Node
	tau := -1
	for _, nd := range cands {
		if nd == nil || excluded(nd.ID) {
			continue
		}
		if nd.Coverage() < tau {
			continue
		}
		g := covered.MarginalGain(nd.CompactCells())
		if g > tau || (g == tau && best != nil && nd.ID < best.ID) {
			best, tau = nd, g
		}
	}
	return best, tau
}

// CoverageSearch runs CoverageSearch (Algorithm 3) with its two hot spots
// — the FindConnectSet walk and the marginal-gain scan — executed on the
// worker pool. The greedy round structure itself is inherently sequential
// (each round's state depends on the previous pick), so rounds are not
// parallelized; results are identical to (*coverage.DITSSearcher).Search.
// On cancellation the rounds picked so far are returned with ctx.Err().
func (e *Executor) CoverageSearch(ctx context.Context, idx *dits.Local, q *dataset.Node, delta float64, k int) (coverage.Result, error) {
	if q == nil || k <= 0 || idx == nil || idx.Root == nil {
		return coverageResultFor(q, nil, nil), ctx.Err()
	}
	merged := q
	covered := q.CompactCells()
	picked := map[int]bool{}
	qIdx := cellset.NewDistIndex(q.FlatCells(), delta)
	var chosen []*dataset.Node

	for len(chosen) < k {
		if err := ctx.Err(); err != nil {
			return coverageResultFor(q, chosen, covered), err
		}
		cands := e.FindConnectSet(ctx, idx.Root, merged, delta, qIdx)
		best, _ := e.PickBest(ctx, cands, func(id int) bool { return picked[id] }, covered)
		if best == nil {
			break
		}
		picked[best.ID] = true
		chosen = append(chosen, best)
		covered = covered.Union(best.CompactCells())
		merged = merged.Merge(best)
		qIdx.AddCompact(best.CompactCells())
	}
	return coverageResultFor(q, chosen, covered), nil
}

// coverageResultFor assembles the coverage.Result for picked datasets.
func coverageResultFor(q *dataset.Node, picked []*dataset.Node, covered *cellset.Compact) coverage.Result {
	r := coverage.Result{Picked: picked}
	if q != nil {
		r.QueryCoverage = q.Coverage()
		r.Coverage = r.QueryCoverage
	}
	if covered != nil {
		r.Coverage = covered.Len()
	}
	return r
}

// CoverageSearchBatch executes a batch of CJSP queries concurrently on the
// pool, one sequential greedy per query (a coverage query's rounds are
// data-dependent, so cross-query concurrency is the parallelism batching
// can exploit). Entry i of the result aligns with query i; a nil query
// yields the empty result. On cancellation remaining queries are left
// empty and ctx.Err() is returned.
func (e *Executor) CoverageSearchBatch(ctx context.Context, idx *dits.Local, qs []*dataset.Node, delta float64, k int) ([]coverage.Result, error) {
	out := make([]coverage.Result, len(qs))
	inner := &Executor{Workers: 1} // one worker per query; no nested pools
	var cursor atomic.Int64
	var cancelled atomic.Bool
	runWorkers(e.workers(), func(wk int) {
		for !cancelled.Load() {
			i := int(cursor.Add(1)) - 1
			if i >= len(qs) {
				return
			}
			res, err := inner.CoverageSearch(ctx, idx, qs[i], delta, k)
			if err != nil {
				cancelled.Store(true)
				return
			}
			out[i] = res
		}
	})
	if cancelled.Load() {
		return out, ctx.Err()
	}
	return out, nil
}
