package coverage

import (
	"math"
	"math/rand"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
)

const theta = 7

func grid() geo.Grid {
	side := float64(int64(1) << theta)
	return geo.NewGrid(theta, geo.Rect{MinX: 0, MinY: 0, MaxX: side, MaxY: side})
}

func randomNodes(rng *rand.Rand, n int) []*dataset.Node {
	side := 1 << theta
	nodes := make([]*dataset.Node, 0, n)
	for i := 0; i < n; i++ {
		cx, cy := rng.Intn(side), rng.Intn(side)
		m := 1 + rng.Intn(20)
		ids := make([]uint64, m)
		for j := range ids {
			x := clamp(cx+rng.Intn(11)-5, 0, side-1)
			y := clamp(cy+rng.Intn(11)-5, 0, side-1)
			ids[j] = geo.ZEncode(uint32(x), uint32(y))
		}
		nodes = append(nodes, dataset.NewNodeFromCells(i, "", cellset.New(ids...)))
	}
	return nodes
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func searchers(nodes []*dataset.Node) []Searcher {
	idx := dits.Build(grid(), nodes, 6)
	return []Searcher{
		&DITSSearcher{Index: idx},
		&SGDITS{Index: idx},
		&SG{Nodes: nodes},
	}
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestThreeAlgorithmsAgree asserts the central equivalence: CoverageSearch
// (merge strategy), SG+DITS (tree-accelerated greedy), and SG (naive
// greedy) make identical greedy choices, because connectivity to the merged
// node equals connectivity to at least one member.
func TestThreeAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nodes := randomNodes(rng, 200)
	ss := searchers(nodes)
	for trial := 0; trial < 30; trial++ {
		q := randomNodes(rng, 1)[0]
		q.ID = -1
		for _, delta := range []float64{0, 1, 3, 8, 20} {
			for _, k := range []int{1, 3, 8} {
				ref := ss[2].Search(q, delta, k) // SG as reference
				for _, s := range ss[:2] {
					got := s.Search(q, delta, k)
					if got.Coverage != ref.Coverage || !equalIDs(got.IDs(), ref.IDs()) {
						t.Fatalf("trial %d δ=%v k=%d: %s picked %v (cov %d), SG picked %v (cov %d)",
							trial, delta, k, s.Name(), got.IDs(), got.Coverage, ref.IDs(), ref.Coverage)
					}
				}
			}
		}
	}
}

// TestConnectivityInvariant verifies every result satisfies Definition 9:
// the picked sets plus the query form a connected graph under direct
// connection at threshold δ.
func TestConnectivityInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nodes := randomNodes(rng, 150)
	ss := searchers(nodes)
	for trial := 0; trial < 20; trial++ {
		q := randomNodes(rng, 1)[0]
		q.ID = -1
		for _, delta := range []float64{0, 2, 6} {
			for _, s := range ss {
				res := s.Search(q, delta, 6)
				if !satisfiesConnectivity(q, res.Picked, delta) {
					t.Fatalf("trial %d δ=%v: %s result %v violates connectivity",
						trial, delta, s.Name(), res.IDs())
				}
				// Coverage accounting must match a recomputation.
				covered := q.Cells
				for _, nd := range res.Picked {
					covered = covered.Union(nd.Cells)
				}
				if covered.Len() != res.Coverage {
					t.Fatalf("%s: Coverage %d, recomputed %d", s.Name(), res.Coverage, covered.Len())
				}
			}
		}
	}
}

func satisfiesConnectivity(q *dataset.Node, picked []*dataset.Node, delta float64) bool {
	members := append([]*dataset.Node{q}, picked...)
	n := len(members)
	visited := make([]bool, n)
	visited[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if !visited[v] && cellset.DistNaive(members[u].Cells, members[v].Cells) <= delta {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	for _, v := range visited {
		if !v {
			return false
		}
	}
	return true
}

// TestGreedyMatchesMCPGuarantee: with δ large enough that every dataset is
// always eligible, CJSP degenerates to the classical maximum coverage
// problem, where greedy provably achieves (1−1/e)·OPT. Compare against the
// exhaustive oracle on small instances.
func TestGreedyMatchesMCPGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		nodes := randomNodes(rng, 10)
		q := randomNodes(rng, 1)[0]
		q.ID = -1
		k := 1 + rng.Intn(4)
		delta := 1e9 // everything connected
		opt := (&Exhaustive{Nodes: nodes}).Search(q, delta, k)
		for _, s := range searchers(nodes) {
			got := s.Search(q, delta, k)
			if got.Coverage > opt.Coverage {
				t.Fatalf("trial %d: %s coverage %d exceeds optimum %d",
					trial, s.Name(), got.Coverage, opt.Coverage)
			}
			// The classical bound relates the *gain* over the always-kept
			// query coverage: |C_k| >= (1-1/e)|OPT| (Theorem 1).
			bound := (1 - 1/math.E) * float64(opt.Coverage)
			if float64(got.Coverage) < bound-1e-9 {
				t.Fatalf("trial %d k=%d: %s coverage %d below (1-1/e)·OPT = %.2f (OPT %d)",
					trial, k, s.Name(), got.Coverage, bound, opt.Coverage)
			}
		}
	}
}

// TestGreedyRespectsConnectivityConstraintVsOracle checks greedy never
// exceeds the true constrained optimum at tight δ.
func TestGreedyNeverExceedsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		nodes := randomNodes(rng, 9)
		q := randomNodes(rng, 1)[0]
		q.ID = -1
		delta := float64(rng.Intn(5))
		k := 1 + rng.Intn(3)
		opt := (&Exhaustive{Nodes: nodes}).Search(q, delta, k)
		for _, s := range searchers(nodes) {
			got := s.Search(q, delta, k)
			if got.Coverage > opt.Coverage {
				t.Fatalf("trial %d δ=%v k=%d: %s coverage %d > optimum %d (picked %v)",
					trial, delta, k, s.Name(), got.Coverage, opt.Coverage, got.IDs())
			}
			if len(got.Picked) > k {
				t.Fatalf("%s picked %d > k=%d", s.Name(), len(got.Picked), k)
			}
		}
	}
}

func TestFindConnectSetMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nodes := randomNodes(rng, 200)
	idx := dits.Build(grid(), nodes, 5)
	for trial := 0; trial < 50; trial++ {
		q := randomNodes(rng, 1)[0]
		for _, delta := range []float64{0, 1, 2.5, 7, 30} {
			got := map[int]bool{}
			for _, nd := range FindConnectSet(idx.Root, q, delta) {
				got[nd.ID] = true
			}
			for _, nd := range nodes {
				want := cellset.DistNaive(nd.Cells, q.Cells) <= delta
				if got[nd.ID] != want {
					t.Fatalf("trial %d δ=%v: dataset %d connected=%v reported=%v",
						trial, delta, nd.ID, want, got[nd.ID])
				}
			}
		}
	}
}

func TestEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nodes := randomNodes(rng, 20)
	q := randomNodes(rng, 1)[0]
	for _, s := range searchers(nodes) {
		if res := s.Search(nil, 5, 3); len(res.Picked) != 0 {
			t.Errorf("%s: nil query picked %v", s.Name(), res.IDs())
		}
		if res := s.Search(q, 5, 0); len(res.Picked) != 0 {
			t.Errorf("%s: k=0 picked %v", s.Name(), res.IDs())
		}
		// Isolated query with δ=0 and no overlapping dataset: no picks,
		// coverage is the query's own.
		far := dataset.NewNodeFromCells(-1, "", cellset.New(geo.ZEncode(127, 127)))
		res := s.Search(far, 0, 5)
		if res.Coverage != far.Cells.Len() {
			t.Errorf("%s: isolated coverage %d, want %d", s.Name(), res.Coverage, far.Cells.Len())
		}
	}
}

// TestMergeExpandsReach verifies indirect connectivity arises across
// iterations: a chain A(adjacent to Q) - B(adjacent to A only) is fully
// picked even though B is not directly connected to Q.
func TestMergeExpandsReach(t *testing.T) {
	q := dataset.NewNodeFromCells(-1, "", cellset.New(geo.ZEncode(0, 0)))
	a := dataset.NewNodeFromCells(1, "", cellset.New(geo.ZEncode(1, 0)))
	b := dataset.NewNodeFromCells(2, "", cellset.New(geo.ZEncode(2, 0)))
	c := dataset.NewNodeFromCells(3, "", cellset.New(geo.ZEncode(90, 90))) // unreachable
	nodes := []*dataset.Node{a, b, c}
	for _, s := range searchers(nodes) {
		res := s.Search(q, 1, 3)
		if !equalIDs(res.IDs(), []int{1, 2}) {
			t.Errorf("%s: picked %v, want [1 2]", s.Name(), res.IDs())
		}
		if res.Coverage != 3 {
			t.Errorf("%s: coverage %d, want 3", s.Name(), res.Coverage)
		}
	}
}
