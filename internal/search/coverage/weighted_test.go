package coverage

import (
	"math"
	"math/rand"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
)

func TestWeightedSearchUnitWeightsMatchCoverageSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	nodes := randomNodes(rng, 120)
	idx := dits.Build(grid(), nodes, 6)
	unit := func(uint64) float64 { return 1 }
	for trial := 0; trial < 20; trial++ {
		q := randomNodes(rng, 1)[0]
		q.ID = -1
		for _, delta := range []float64{0, 3, 10} {
			want := (&DITSSearcher{Index: idx}).Search(q, delta, 5)
			got := WeightedSearch(idx, q, delta, 5, unit)
			if got.Coverage != want.Coverage || !equalIDs(got.IDs(), want.IDs()) {
				t.Fatalf("trial %d δ=%v: weighted %v (cov %d), plain %v (cov %d)",
					trial, delta, got.IDs(), got.Coverage, want.IDs(), want.Coverage)
			}
			if math.Abs(got.Weight-float64(got.Coverage)) > 1e-9 {
				t.Fatalf("unit weight %v != coverage %d", got.Weight, got.Coverage)
			}
		}
	}
}

func TestWeightedSearchFollowsWeights(t *testing.T) {
	// Two candidate datasets touch the query. One covers many worthless
	// cells, the other few precious cells; the weighted greedy must pick
	// the precious one first even though plain greedy would not.
	q := dataset.NewNodeFromCells(-1, "", cellset.New(geo.ZEncode(10, 10)))
	var bigCells []uint64
	for i := 0; i < 10; i++ {
		bigCells = append(bigCells, geo.ZEncode(uint32(11+i), 10))
	}
	big := dataset.NewNodeFromCells(1, "", cellset.New(bigCells...))
	precious := dataset.NewNodeFromCells(2, "", cellset.New(geo.ZEncode(10, 11), geo.ZEncode(10, 12)))
	idx := dits.Build(grid(), []*dataset.Node{big, precious}, 4)

	// Cells in big's row are worth 0.1; precious's column cells are worth 50.
	weight := func(c uint64) float64 {
		_, y := geo.ZDecode(c)
		if y > 10 {
			return 50
		}
		return 0.1
	}
	res := WeightedSearch(idx, q, 1, 1, weight)
	if len(res.Picked) != 1 || res.Picked[0].ID != 2 {
		t.Fatalf("weighted greedy picked %v, want [2]", res.IDs())
	}
	if math.Abs(res.Weight-res.QueryWeight-100) > 1e-9 {
		t.Fatalf("gain weight = %v, want 100", res.Weight-res.QueryWeight)
	}

	// Plain greedy prefers the many-cell dataset.
	plain := (&DITSSearcher{Index: idx}).Search(q, 1, 1)
	if len(plain.Picked) != 1 || plain.Picked[0].ID != 1 {
		t.Fatalf("plain greedy picked %v, want [1]", plain.IDs())
	}
}

func TestWeightedSearchEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nodes := randomNodes(rng, 20)
	idx := dits.Build(grid(), nodes, 4)
	unit := func(uint64) float64 { return 1 }
	q := randomNodes(rng, 1)[0]
	if res := WeightedSearch(idx, nil, 5, 3, unit); len(res.Picked) != 0 {
		t.Error("nil query should pick nothing")
	}
	if res := WeightedSearch(idx, q, 5, 0, unit); len(res.Picked) != 0 {
		t.Error("k=0 should pick nothing")
	}
	if res := WeightedSearch(idx, q, 5, 3, nil); len(res.Picked) != 0 {
		t.Error("nil weight should pick nothing")
	}
	res := WeightedSearch(idx, q, 5, 3, unit)
	if !satisfiesConnectivity(q, res.Picked, 5) {
		t.Errorf("weighted result %v violates connectivity", res.IDs())
	}
}
