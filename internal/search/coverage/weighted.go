package coverage

import (
	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/index/dits"
)

// Weighted coverage: the weighted-MCP variant the related work surveys
// ([48] in §II). Cells carry weights — think population served, demand, or
// risk — and the objective becomes the total weight of cells covered by
// the query plus the picked connected datasets, instead of their count.

// CellWeight returns the weight of one cell. Weights must be non-negative;
// the unweighted problem is CellWeight that returns 1 for every cell.
type CellWeight func(cell uint64) float64

// WeightedResult is the outcome of a weighted coverage search.
type WeightedResult struct {
	Picked        []*dataset.Node
	Weight        float64 // total weight of covered cells
	QueryWeight   float64 // weight covered by the query alone
	Coverage      int     // covered cell count, for reference
	QueryCoverage int
}

// IDs returns the picked dataset IDs in pick order.
func (r WeightedResult) IDs() []int {
	out := make([]int, len(r.Picked))
	for i, n := range r.Picked {
		out[i] = n.ID
	}
	return out
}

// WeightedSearch greedily picks up to k connected datasets maximizing the
// covered cell weight, using the same merge strategy and Lemma 4 bounds as
// CoverageSearch. With a constant weight function it reduces exactly to
// CoverageSearch (tests assert this).
func WeightedSearch(idx *dits.Local, q *dataset.Node, delta float64, k int, weight CellWeight) WeightedResult {
	res := WeightedResult{}
	if q == nil || idx == nil || idx.Root == nil || weight == nil || k <= 0 {
		if q != nil && weight != nil {
			res.QueryWeight = setWeight(q.Cells, weight)
			res.Weight = res.QueryWeight
			res.QueryCoverage = q.Cells.Len()
			res.Coverage = res.QueryCoverage
		}
		return res
	}
	res.QueryWeight = setWeight(q.Cells, weight)
	res.Weight = res.QueryWeight
	res.QueryCoverage = q.Cells.Len()
	res.Coverage = res.QueryCoverage

	merged := q
	covered := q.CompactCells()
	picked := map[int]bool{}
	qIdx := cellset.NewDistIndex(q.Cells, delta)

	for len(res.Picked) < k {
		cands := findConnectSet(idx.Root, merged, delta, qIdx)
		var best *dataset.Node
		bestGain := -1.0
		for _, nd := range cands {
			if picked[nd.ID] {
				continue
			}
			g := compactWeight(nd.CompactCells().Diff(covered), weight)
			if g > bestGain || (g == bestGain && best != nil && nd.ID < best.ID) {
				best, bestGain = nd, g
			}
		}
		if best == nil || bestGain < 0 {
			break
		}
		picked[best.ID] = true
		res.Picked = append(res.Picked, best)
		res.Weight += bestGain
		covered = covered.Union(best.CompactCells())
		res.Coverage = covered.Len()
		merged = merged.Merge(best)
		qIdx.AddCompact(best.CompactCells())
	}
	return res
}

// setWeight sums the weights of a cell set.
func setWeight(s cellset.Set, weight CellWeight) float64 {
	var total float64
	for _, c := range s {
		total += weight(c)
	}
	return total
}

// compactWeight sums the weights of a container cell set.
func compactWeight(s *cellset.Compact, weight CellWeight) float64 {
	var total float64
	s.ForEach(func(c uint64) bool {
		total += weight(c)
		return true
	})
	return total
}
