package coverage

import (
	"math"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/index/dits"
)

// The paper's conclusion names "spatial dataset search based on data
// pricing [to] return the optimal dataset combination" as future work.
// PricedSearch implements that extension: every dataset carries a price,
// the searcher has a budget, and the goal is maximum connected coverage
// per money — the budgeted maximum coverage problem (Khuller et al. [33])
// under CJSP's spatial-connectivity constraint. The greedy rule picks the
// connected dataset with the best marginal-gain-to-price ratio that still
// fits the budget; like budgeted MCP, pure ratio greedy is taken because
// the per-iteration candidate set changes with connectivity.

// Pricing maps dataset IDs to prices. Datasets without an entry cost
// DefaultPrice.
type Pricing struct {
	Prices       map[int]float64
	DefaultPrice float64
}

// PriceOf returns the price of a dataset.
func (p Pricing) PriceOf(id int) float64 {
	if v, ok := p.Prices[id]; ok {
		return v
	}
	return p.DefaultPrice
}

// PricedResult is the outcome of a budgeted coverage search.
type PricedResult struct {
	Picked        []*dataset.Node
	Coverage      int
	QueryCoverage int
	Spent         float64
}

// IDs returns the picked dataset IDs in pick order.
func (r PricedResult) IDs() []int {
	out := make([]int, len(r.Picked))
	for i, n := range r.Picked {
		out[i] = n.ID
	}
	return out
}

// PricedSearch greedily buys connected datasets maximizing marginal
// coverage per price until no affordable connected dataset remains or k
// datasets were bought (k <= 0 means unbounded by count).
func PricedSearch(idx *dits.Local, q *dataset.Node, delta float64, budget float64, k int, pricing Pricing) PricedResult {
	res := PricedResult{}
	if q == nil || idx == nil || idx.Root == nil {
		return res
	}
	res.QueryCoverage = q.Cells.Len()
	res.Coverage = res.QueryCoverage
	if budget <= 0 {
		return res
	}
	if k <= 0 {
		k = idx.Len()
	}

	merged := q
	covered := q.CompactCells()
	picked := map[int]bool{}
	qIdx := cellset.NewDistIndex(q.Cells, delta)

	for len(res.Picked) < k {
		cands := findConnectSet(idx.Root, merged, delta, qIdx)
		var best *dataset.Node
		bestRatio := -1.0
		bestGain := 0
		for _, nd := range cands {
			if picked[nd.ID] {
				continue
			}
			price := pricing.PriceOf(nd.ID)
			if price > budget-res.Spent {
				continue // unaffordable
			}
			g := covered.MarginalGain(nd.CompactCells())
			if g <= 0 {
				continue // buying it adds nothing
			}
			ratio := ratioOf(g, price)
			if ratio > bestRatio || (ratio == bestRatio && best != nil && nd.ID < best.ID) {
				best, bestRatio, bestGain = nd, ratio, g
			}
		}
		if best == nil {
			break
		}
		picked[best.ID] = true
		res.Picked = append(res.Picked, best)
		res.Spent += pricing.PriceOf(best.ID)
		covered = covered.Union(best.CompactCells())
		res.Coverage = covered.Len()
		merged = merged.Merge(best)
		qIdx.AddCompact(best.CompactCells())
		_ = bestGain
	}
	return res
}

// ratioOf is gain/price with a free dataset treated as infinitely good.
func ratioOf(gain int, price float64) float64 {
	if price <= 0 {
		return math.Inf(1)
	}
	return float64(gain) / price
}
