package coverage

import (
	"math/rand"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
)

func TestPricedSearchRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	nodes := randomNodes(rng, 100)
	idx := dits.Build(grid(), nodes, 6)
	pricing := Pricing{Prices: map[int]float64{}, DefaultPrice: 1}
	for _, nd := range nodes {
		pricing.Prices[nd.ID] = 0.5 + rng.Float64()*4
	}
	for trial := 0; trial < 20; trial++ {
		q := randomNodes(rng, 1)[0]
		q.ID = -1
		budget := rng.Float64() * 10
		res := PricedSearch(idx, q, 1e9, budget, 0, pricing)
		if res.Spent > budget+1e-9 {
			t.Fatalf("trial %d: spent %v > budget %v", trial, res.Spent, budget)
		}
		var sum float64
		for _, nd := range res.Picked {
			sum += pricing.PriceOf(nd.ID)
		}
		if sum != res.Spent {
			t.Fatalf("Spent %v does not match prices %v", res.Spent, sum)
		}
		// Coverage accounting.
		covered := q.Cells
		for _, nd := range res.Picked {
			covered = covered.Union(nd.Cells)
		}
		if covered.Len() != res.Coverage {
			t.Fatalf("Coverage %d, recomputed %d", res.Coverage, covered.Len())
		}
	}
}

func TestPricedSearchConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	nodes := randomNodes(rng, 80)
	idx := dits.Build(grid(), nodes, 6)
	pricing := Pricing{DefaultPrice: 1}
	for trial := 0; trial < 20; trial++ {
		q := randomNodes(rng, 1)[0]
		q.ID = -1
		res := PricedSearch(idx, q, 3, 8, 0, pricing)
		if !satisfiesConnectivity(q, res.Picked, 3) {
			t.Fatalf("trial %d: result %v violates connectivity", trial, res.IDs())
		}
	}
}

func TestPricedSearchUniformPriceMatchesGreedy(t *testing.T) {
	// With all prices 1 and budget >= k, ratio greedy equals plain greedy
	// (same gains, same tie-break), so PricedSearch must match
	// CoverageSearch's picks.
	rng := rand.New(rand.NewSource(33))
	nodes := randomNodes(rng, 120)
	idx := dits.Build(grid(), nodes, 6)
	pricing := Pricing{DefaultPrice: 1}
	for trial := 0; trial < 15; trial++ {
		q := randomNodes(rng, 1)[0]
		q.ID = -1
		k := 1 + rng.Intn(5)
		want := (&DITSSearcher{Index: idx}).Search(q, 4, k)
		got := PricedSearch(idx, q, 4, float64(k), k, pricing)
		// Plain greedy may pick zero-gain datasets to fill k; PricedSearch
		// never buys a zero-gain dataset, so compare coverage only.
		if got.Coverage != want.Coverage {
			t.Fatalf("trial %d k=%d: priced coverage %d (%v), greedy %d (%v)",
				trial, k, got.Coverage, got.IDs(), want.Coverage, want.IDs())
		}
	}
}

func TestPricedSearchPrefersCheap(t *testing.T) {
	// Two equal-coverage datasets touch the query; only the cheaper one
	// fits the budget twice over; ratio greedy must take the cheap one
	// first.
	q := dataset.NewNodeFromCells(-1, "", cellset.New(geo.ZEncode(10, 10)))
	cheap := dataset.NewNodeFromCells(1, "", cellset.New(geo.ZEncode(11, 10), geo.ZEncode(12, 10)))
	dear := dataset.NewNodeFromCells(2, "", cellset.New(geo.ZEncode(10, 11), geo.ZEncode(10, 12)))
	idx := dits.Build(grid(), []*dataset.Node{cheap, dear}, 4)
	pricing := Pricing{Prices: map[int]float64{1: 1, 2: 5}, DefaultPrice: 1}
	res := PricedSearch(idx, q, 1.5, 2, 0, pricing)
	if len(res.Picked) != 1 || res.Picked[0].ID != 1 {
		t.Fatalf("picked %v, want [1]", res.IDs())
	}
	if res.Spent != 1 {
		t.Fatalf("spent %v, want 1", res.Spent)
	}
}

func TestPricedSearchEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	nodes := randomNodes(rng, 10)
	idx := dits.Build(grid(), nodes, 4)
	pricing := Pricing{DefaultPrice: 1}
	q := randomNodes(rng, 1)[0]
	if res := PricedSearch(idx, nil, 5, 10, 3, pricing); len(res.Picked) != 0 {
		t.Error("nil query should pick nothing")
	}
	if res := PricedSearch(idx, q, 5, 0, 3, pricing); len(res.Picked) != 0 || res.Spent != 0 {
		t.Error("zero budget should pick nothing")
	}
	if res := PricedSearch(nil, q, 5, 10, 3, pricing); len(res.Picked) != 0 {
		t.Error("nil index should pick nothing")
	}
	// Free datasets are always worth buying when they add coverage.
	free := Pricing{DefaultPrice: 0}
	res := PricedSearch(idx, q, 1e9, 0.0001, 0, free)
	if res.Coverage < q.Cells.Len() {
		t.Error("coverage shrank")
	}
}
