package coverage

import (
	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/index/dits"
)

// SG is the standard greedy baseline of §VII-D [30] extended to CJSP: each
// iteration it traverses all datasets in the source, tests direct
// connectivity against every member of the running result set with the
// naive pairwise cell distance, and adds the connected dataset with the
// maximum marginal gain. O(|R|·n) connectivity work per round.
type SG struct {
	Nodes []*dataset.Node
}

// Name implements Searcher.
func (s *SG) Name() string { return "SG" }

// Search implements Searcher.
func (s *SG) Search(q *dataset.Node, delta float64, k int) Result {
	if q == nil || k <= 0 {
		return resultFor(q, nil)
	}
	covered := q.CompactCells()
	picked := map[int]bool{}
	members := []*dataset.Node{q}
	var chosen []*dataset.Node

	for len(chosen) < k {
		var cands []*dataset.Node
		for _, nd := range s.Nodes {
			if nd == nil || picked[nd.ID] {
				continue
			}
			// Directly connected to any member of R ∪ {Q}? The exact
			// Definition 7 predicate is evaluated from scratch for every
			// (dataset, member) pair — SG has no index to prune with or
			// cache in, which is what makes it the slow baseline.
			for _, m := range members {
				if cellset.WithinDist(nd.Cells, m.Cells, delta) {
					cands = append(cands, nd)
					break
				}
			}
		}
		best := pickBest(cands, picked, covered)
		if best == nil {
			break
		}
		picked[best.ID] = true
		chosen = append(chosen, best)
		members = append(members, best)
		covered = covered.Union(best.CompactCells())
	}
	return Result{Picked: chosen, Coverage: covered.Len(), QueryCoverage: q.Cells.Len()}
}

// SGDITS is the SG+DITS baseline of §VII-D: the same greedy loop as SG,
// but each round finds the connected candidates through one FindConnectSet
// tree search per result-set member (no merge strategy), so it benefits
// from the Lemma 4 bounds yet still pays |R| searches per round.
type SGDITS struct {
	Index *dits.Local
}

// Name implements Searcher.
func (s *SGDITS) Name() string { return "SG+DITS" }

// Search implements Searcher.
func (s *SGDITS) Search(q *dataset.Node, delta float64, k int) Result {
	if q == nil || k <= 0 || s.Index.Root == nil {
		return resultFor(q, nil)
	}
	covered := q.CompactCells()
	picked := map[int]bool{}
	members := []*dataset.Node{q}
	var chosen []*dataset.Node

	for len(chosen) < k {
		seen := map[int]bool{}
		var cands []*dataset.Node
		for _, m := range members {
			for _, nd := range FindConnectSet(s.Index.Root, m, delta) {
				if !seen[nd.ID] {
					seen[nd.ID] = true
					cands = append(cands, nd)
				}
			}
		}
		best := pickBest(cands, picked, covered)
		if best == nil {
			break
		}
		picked[best.ID] = true
		chosen = append(chosen, best)
		members = append(members, best)
		covered = covered.Union(best.CompactCells())
	}
	return Result{Picked: chosen, Coverage: covered.Len(), QueryCoverage: q.Cells.Len()}
}

// Exhaustive solves CJSP exactly by enumerating every subset of size <= k
// that satisfies spatial connectivity together with the query
// (Definition 9). It is exponential and exists only as the test oracle for
// the greedy algorithms' approximation behaviour on small instances.
type Exhaustive struct {
	Nodes []*dataset.Node
}

// Name implements Searcher.
func (s *Exhaustive) Name() string { return "Exhaustive" }

// Search implements Searcher. It returns an optimal subset; among optimal
// subsets the pick order is unspecified.
func (s *Exhaustive) Search(q *dataset.Node, delta float64, k int) Result {
	if q == nil || k <= 0 {
		return resultFor(q, nil)
	}
	nodes := make([]*dataset.Node, 0, len(s.Nodes))
	for _, nd := range s.Nodes {
		if nd != nil {
			nodes = append(nodes, nd)
		}
	}
	n := len(nodes)
	if n > 20 {
		panic("coverage: Exhaustive limited to 20 datasets")
	}
	// Precompute the direct-connection graph over nodes ∪ {q}; index n is q.
	adj := make([][]bool, n+1)
	for i := range adj {
		adj[i] = make([]bool, n+1)
	}
	all := append(append([]*dataset.Node(nil), nodes...), q)
	for i := 0; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			c := cellset.DistNaive(all[i].Cells, all[j].Cells) <= delta
			adj[i][j], adj[j][i] = c, c
		}
	}

	best := Result{Coverage: q.Cells.Len(), QueryCoverage: q.Cells.Len()}
	for mask := 0; mask < 1<<n; mask++ {
		if popcount(mask) > k {
			continue
		}
		if !connectedSubset(mask, n, adj) {
			continue
		}
		covered := q.Cells
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				covered = covered.Union(nodes[i].Cells)
			}
		}
		if covered.Len() > best.Coverage {
			var picked []*dataset.Node
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					picked = append(picked, nodes[i])
				}
			}
			best = Result{Picked: picked, Coverage: covered.Len(), QueryCoverage: q.Cells.Len()}
		}
	}
	return best
}

// connectedSubset reports whether the chosen datasets together with q form
// a connected graph under the direct-connection adjacency (Definition 9:
// every pair directly or indirectly connected within the collection).
func connectedSubset(mask, n int, adj [][]bool) bool {
	members := []int{n} // q always participates
	for i := 0; i < n; i++ {
		if mask&(1<<i) != 0 {
			members = append(members, i)
		}
	}
	visited := map[int]bool{n: true}
	queue := []int{n}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range members {
			if !visited[v] && adj[u][v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return len(visited) == len(members)
}

func popcount(v int) int {
	c := 0
	for v != 0 {
		v &= v - 1
		c++
	}
	return c
}
