// Package coverage solves the Coverage Joinable Search Problem (CJSP,
// Definition 11): pick up to k datasets maximizing the cells covered
// together with the query, subject to spatial connectivity (Definitions
// 7-9). CJSP is NP-hard (Lemma 1); the paper's CoverageSearch (Algorithm 3)
// is a greedy (1−1/e under the Lemma 5 assumption) algorithm accelerated by
// the Lemma 4 distance bounds and the spatial merge strategy. The package
// also provides the two baselines of §VII-D: the standard greedy SG and
// SG+DITS.
//
// All three algorithms make the same greedy choice sequence (maximum
// marginal gain, ties toward smaller IDs): a dataset is directly connected
// to the merged result set exactly when it is directly connected to at
// least one member, because the minimum cell distance to a union of sets is
// the minimum over the sets. Tests assert the three produce identical
// results; only their running time differs.
//
// # Concurrency and ownership
//
// Searches are read-only over the index: concurrent Search calls on one
// index are safe as long as no index mutation runs concurrently. The
// merged query node and the covered set a search accumulates are owned by
// that search; cellset.Compact values are immutable, so the merged state
// shares containers with the picked datasets without copying. A
// caller-maintained DistIndex (FindConnectSetWithIndex) may be read by
// many concurrent walks — the parallel executor does this — but growing
// it (Add/AddCompact) requires exclusive access; the greedy loops
// alternate search and growth, never overlapping them. Result.Picked
// aliases the index's dataset nodes and must be treated as read-only.
package coverage

import (
	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/index/dits"
)

// Result is the outcome of a coverage joinable search.
type Result struct {
	// Picked lists the chosen dataset nodes in greedy pick order.
	Picked []*dataset.Node
	// Coverage is |S_Q ∪ (∪ picked)|, the objective of Equation 2.
	Coverage int
	// QueryCoverage is |S_Q| alone, for reporting the gain.
	QueryCoverage int
}

// IDs returns the picked dataset IDs in pick order.
func (r Result) IDs() []int {
	out := make([]int, len(r.Picked))
	for i, n := range r.Picked {
		out[i] = n.ID
	}
	return out
}

// Searcher is a CJSP algorithm over one data source.
type Searcher interface {
	// Name identifies the algorithm (for benchmark tables).
	Name() string
	// Search returns up to k connected datasets greedily maximizing
	// coverage together with the query, under connectivity threshold
	// delta (in cell units).
	Search(q *dataset.Node, delta float64, k int) Result
}

// pickBest selects, among candidates not yet picked, the dataset with the
// maximum marginal gain over covered, applying the size filter of
// Algorithm 3 (lines 5-9): a dataset with fewer cells than the best gain
// seen so far cannot reach it, so its exact gain is never computed. (The
// paper filters |S_D| > τ strictly; ties are admitted here so that the
// ID tie-break is independent of candidate order and all three algorithms
// return identical results.) Ties break toward smaller IDs.
func pickBest(cands []*dataset.Node, picked map[int]bool, covered *cellset.Compact) *dataset.Node {
	tau := -1
	var best *dataset.Node
	for _, nd := range cands {
		if nd == nil || picked[nd.ID] {
			continue
		}
		if nd.Coverage() < tau {
			continue // size filter: gain <= |S_D| < τ
		}
		g := covered.MarginalGain(nd.CompactCells())
		if g > tau || (g == tau && best != nil && nd.ID < best.ID) {
			best = nd
			tau = g
		}
	}
	return best
}

// DITSSearcher implements CoverageSearch (Algorithm 3): each of the k
// iterations performs one FindConnectSet tree search from the merged
// result node N_M, then greedily adds the connected dataset with the
// maximum marginal gain and merges it into N_M.
type DITSSearcher struct {
	Index *dits.Local
}

// Name implements Searcher.
func (s *DITSSearcher) Name() string { return "CoverageSearch" }

// Search implements Searcher.
func (s *DITSSearcher) Search(q *dataset.Node, delta float64, k int) Result {
	if q == nil || k <= 0 || s.Index.Root == nil {
		return resultFor(q, nil)
	}
	merged := q
	covered := q.CompactCells()
	picked := map[int]bool{}
	qIdx := cellset.NewDistIndex(q.FlatCells(), delta)
	var chosen []*dataset.Node

	for len(chosen) < k {
		cands := findConnectSet(s.Index.Root, merged, delta, qIdx)
		best := pickBest(cands, picked, covered)
		if best == nil {
			break // nothing connected remains
		}
		picked[best.ID] = true
		chosen = append(chosen, best)
		covered = covered.Union(best.CompactCells())
		merged = merged.Merge(best)
		qIdx.AddCompact(best.CompactCells())
	}
	return Result{Picked: chosen, Coverage: covered.Len(), QueryCoverage: q.Coverage()}
}

// FindConnectSet walks the DITS-L tree and returns every dataset node
// directly connected to q under threshold delta (Algorithm 3, lines
// 14-26): a subtree whose Lemma 4 upper bound is within delta is accepted
// wholesale; one whose lower bound exceeds delta is pruned; leaves in
// between are verified cell-exactly.
func FindConnectSet(root *dits.TreeNode, q *dataset.Node, delta float64) []*dataset.Node {
	return findConnectSet(root, q, delta, cellset.NewDistIndex(q.FlatCells(), delta))
}

// FindConnectSetWithIndex is FindConnectSet with a caller-maintained
// distance index over q's cells. Session-based federated searches keep the
// index alive across greedy rounds and grow it with each round's delta
// instead of rebuilding it from the full merged set every time.
func FindConnectSetWithIndex(root *dits.TreeNode, q *dataset.Node, delta float64, qIdx *cellset.DistIndex) []*dataset.Node {
	return findConnectSet(root, q, delta, qIdx)
}

// findConnectSet is FindConnectSet with the query's distance index supplied
// by the caller, so iterative searches can reuse (and grow) it.
func findConnectSet(root *dits.TreeNode, q *dataset.Node, delta float64, qIdx *cellset.DistIndex) []*dataset.Node {
	var out []*dataset.Node
	var walk func(n *dits.TreeNode)
	walk = func(n *dits.TreeNode) {
		if n == nil || n.Rect.IsEmpty() {
			return
		}
		c := n.O.Dist(q.O)
		lb := c - n.R - q.R
		if lb < 0 {
			lb = 0
		}
		ub := c + n.R + q.R
		if ub <= delta {
			// Whole subtree connected: collect every dataset under it.
			collect(n, &out)
			return
		}
		if lb > delta {
			return // whole subtree too far
		}
		if n.IsLeaf() {
			// Materialize a file-backed leaf before its children's cells are
			// needed — both for the exact connectivity check here and for the
			// marginal-gain scans downstream of the returned candidates.
			n.EnsureLoaded()
			for _, nd := range n.Children {
				ndLB, ndUB := nd.DistBounds(q)
				if ndLB > delta {
					continue
				}
				if ndUB <= delta || connectedTo(qIdx, nd) {
					out = append(out, nd)
				}
			}
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(root)
	return out
}

func collect(n *dits.TreeNode, out *[]*dataset.Node) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		n.EnsureLoaded()
		*out = append(*out, n.Children...)
		return
	}
	collect(n.Left, out)
	collect(n.Right, out)
}

// connectedTo runs the exact cell-distance check against whichever form
// the dataset node carries: the flat set for heap-built nodes, the
// container form for file-backed ones.
func connectedTo(qIdx *cellset.DistIndex, nd *dataset.Node) bool {
	if nd.Cells != nil {
		return qIdx.Connected(nd.Cells)
	}
	return qIdx.ConnectedCompact(nd.CompactCells())
}

func resultFor(q *dataset.Node, picked []*dataset.Node) Result {
	r := Result{Picked: picked}
	if q != nil {
		r.QueryCoverage = q.Coverage()
		r.Coverage = r.QueryCoverage
	}
	return r
}
