package overlap

import (
	"cmp"
	"slices"

	"dits/internal/dataset"
	"dits/internal/index/dits"
)

// DITSSearcher implements OverlapSearch (Algorithm 2) on a DITS-L index:
// a branch-and-bound pass prunes subtrees whose MBR misses the query and
// collects the surviving leaves; those are verified best-upper-bound-first
// against the running k-th best overlap, with the Lemma 2/3 posting-list
// bounds giving each leaf a second chance to be skipped before the exact
// per-dataset counting. Whole leaves prune in batch, and verification
// stops as soon as no remaining leaf can improve the result.
type DITSSearcher struct {
	Index *dits.Local

	// DisableBounds switches off the Lemma 2/3 leaf bounds and the batch
	// pruning built on them, so every MBR-intersecting leaf is verified.
	// It exists for the ablation benchmark; results are identical either
	// way, only the work done differs.
	DisableBounds bool
}

// Name implements Searcher.
func (s *DITSSearcher) Name() string {
	if s.DisableBounds {
		return "OverlapSearch(no-bounds)"
	}
	return "OverlapSearch"
}

// candidateLeaf is a leaf that survived MBR pruning, with its cheap upper
// bound min(|S_Q|, MaxCells).
type candidateLeaf struct {
	leaf *dits.TreeNode
	ub   int
}

// TopK implements Searcher.
func (s *DITSSearcher) TopK(q *dataset.Node, k int) []Result {
	if q == nil || k <= 0 || s.Index.Root == nil {
		return nil
	}
	// All bound and verification arithmetic runs on the container engine;
	// CompactCells falls back to a one-off conversion for hand-built
	// query nodes.
	qc := q.CompactCells()
	// Filter step: collect the leaves whose MBR intersects the query MBR
	// (internal-node pruning of Algorithm 2, lines 24-26). Each carries
	// the free upper bound min(|S_Q|, MaxCells).
	var cands []candidateLeaf
	var walk func(n *dits.TreeNode)
	walk = func(n *dits.TreeNode) {
		if n == nil || !n.Rect.Intersects(q.Rect) {
			return
		}
		if !n.IsLeaf() {
			walk(n.Left)
			walk(n.Right)
			return
		}
		ub := n.MaxCells
		if qn := q.Coverage(); qn < ub {
			ub = qn
		}
		if ub > 0 {
			cands = append(cands, candidateLeaf{leaf: n, ub: ub})
		}
	}
	walk(s.Index.Root)

	// Verification in decreasing upper-bound order: once k results are
	// held, a leaf whose bound is below the running k-th best — and, as
	// the leaves are sorted, every later leaf — can be pruned in batch.
	// For surviving leaves the Lemma 2/3 bounds give a second, tighter
	// chance to skip before the exact per-dataset counting.
	slices.SortFunc(cands, func(a, b candidateLeaf) int { return cmp.Compare(b.ub, a.ub) })
	res := newTopK(k)
	for _, c := range cands {
		if res.full() && c.ub < res.kthOverlap() {
			break // every later leaf has an even smaller upper bound
		}
		if !s.DisableBounds {
			// Lemma 2's ub skips the exact counting when nothing in the
			// leaf can improve the top-k; Lemma 3's lb is subsumed by the
			// counting that follows for surviving leaves.
			if ub := c.leaf.OverlapUBCompact(qc); ub == 0 ||
				(res.full() && ub < res.kthOverlap()) {
				continue
			}
		}
		counts := c.leaf.OverlapCountsCompact(qc)
		for i, d := range c.leaf.Children {
			if counts[i] > 0 {
				res.offer(Result{ID: d.ID, Name: d.Name, Overlap: counts[i]})
			}
		}
	}
	return res.sorted()
}
