package overlap

import (
	"math/rand"
	"sync"
	"testing"

	"dits/internal/index/dits"
)

// TestConcurrentSearches validates the documented guarantee that read-only
// searches on one DITS-L index are safe to run concurrently (run with
// -race to actually exercise the detector).
func TestConcurrentSearches(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	nodes := randomNodes(rng, 200)
	idx := dits.Build(grid(), nodes, 8)
	s := &DITSSearcher{Index: idx}
	oracle := &BruteForce{Nodes: nodes}

	queries := randomNodes(rng, 8)
	wants := make([][]int, len(queries))
	for i, q := range queries {
		q.ID = -1
		wants[i] = overlapsOf(oracle.TopK(q, 10))
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i, q := range queries {
					if got := overlapsOf(s.TopK(q, 10)); !equalInts(got, wants[i]) {
						errs <- "concurrent result mismatch"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
