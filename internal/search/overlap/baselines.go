package overlap

import (
	"dits/internal/dataset"
	"dits/internal/index/josie"
	"dits/internal/index/quadtree"
	"dits/internal/index/rtree"
	"dits/internal/index/sts3"
)

// QuadtreeSearcher performs OJSP on the quadtree baseline (§VII-C): for
// every query cell it locates the leaf holding the cell and counts the
// dataset IDs found there, then ranks all touched datasets — effectively an
// inverted-index scan, which is why its runtime barely depends on k.
type QuadtreeSearcher struct {
	Index *quadtree.Tree
}

// Name implements Searcher.
func (s *QuadtreeSearcher) Name() string { return "QuadTree" }

// TopK implements Searcher.
func (s *QuadtreeSearcher) TopK(q *dataset.Node, k int) []Result {
	if q == nil || k <= 0 {
		return nil
	}
	return rankCounts(s.Index.OverlapCounts(q.Cells), k, s.Index.Name)
}

// RtreeSearcher performs OJSP on the R-tree baseline (§VII-C): it finds all
// datasets whose MBR intersects the query MBR and verifies the exact set
// intersection of each.
type RtreeSearcher struct {
	Index *rtree.Tree
}

// Name implements Searcher.
func (s *RtreeSearcher) Name() string { return "Rtree" }

// TopK implements Searcher.
func (s *RtreeSearcher) TopK(q *dataset.Node, k int) []Result {
	if q == nil || k <= 0 {
		return nil
	}
	qc := q.CompactCells()
	res := newTopK(k)
	for _, d := range s.Index.SearchIntersect(q.Rect) {
		// Cheap size bound first: |S_Q ∩ S_D| <= min(|S_Q|, |S_D|).
		if res.full() {
			m := d.Cells.Len()
			if qn := q.Cells.Len(); qn < m {
				m = qn
			}
			if m < res.kthOverlap() {
				continue
			}
		}
		if c := d.CompactCells().IntersectCount(qc); c > 0 {
			res.offer(Result{ID: d.ID, Name: d.Name, Overlap: c})
		}
	}
	return res.sorted()
}

// STS3Searcher performs OJSP on the flat inverted index baseline: it scans
// the query's posting lists and then must rank every candidate dataset.
type STS3Searcher struct {
	Index *sts3.Index
}

// Name implements Searcher.
func (s *STS3Searcher) Name() string { return "STS3" }

// TopK implements Searcher.
func (s *STS3Searcher) TopK(q *dataset.Node, k int) []Result {
	if q == nil || k <= 0 {
		return nil
	}
	return rankCounts(s.Index.OverlapCounts(q.Cells), k, s.Index.Name)
}

// JosieSearcher performs OJSP on the Josie baseline, which terminates the
// posting-list scan early through the prefix filter.
type JosieSearcher struct {
	Index *josie.Index
}

// Name implements Searcher.
func (s *JosieSearcher) Name() string { return "Josie" }

// TopK implements Searcher.
func (s *JosieSearcher) TopK(q *dataset.Node, k int) []Result {
	if q == nil || k <= 0 {
		return nil
	}
	rs := s.Index.TopK(q.Cells, k)
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Name: s.Index.Name(r.ID), Overlap: r.Overlap}
	}
	return out
}

// BruteForce is the oracle searcher: it intersects the query with every
// dataset. Tests cross-check all other searchers against it.
type BruteForce struct {
	Nodes []*dataset.Node
}

// Name implements Searcher.
func (s *BruteForce) Name() string { return "BruteForce" }

// TopK implements Searcher.
func (s *BruteForce) TopK(q *dataset.Node, k int) []Result {
	if q == nil || k <= 0 {
		return nil
	}
	qc := q.CompactCells()
	res := newTopK(k)
	for _, d := range s.Nodes {
		if d == nil {
			continue
		}
		if c := d.CompactCells().IntersectCount(qc); c > 0 {
			res.offer(Result{ID: d.ID, Name: d.Name, Overlap: c})
		}
	}
	return res.sorted()
}
