// Package overlap solves the Overlap Joinable Search Problem (OJSP,
// Definition 10): find the k datasets with the largest cell-set
// intersection with the query. It provides the paper's OverlapSearch
// (Algorithm 2) over DITS-L plus the four baseline searchers of §VII-C
// (QuadTree, R-tree, STS3, Josie) and a brute-force oracle.
//
// All searchers are exact. Results are ranked by overlap descending with
// ties broken toward smaller dataset IDs, and only datasets with positive
// overlap are returned (a dataset sharing no cell with the query is not
// joinable). Better is the single definition of that ranking, shared with
// the parallel executor (search/exec) and the federation's result merge.
//
// # Concurrency and ownership
//
// Searchers are read-only over their index: any number of goroutines may
// run TopK concurrently on one DITSSearcher (or on the baselines) as long
// as no index mutation (Insert/Delete/Update) runs at the same time —
// index mutation requires exclusive access. A query node is owned by its
// caller and is only read; searchers never mutate it (CompactCells
// derives, never caches). Returned result slices are freshly allocated
// and owned by the caller.
package overlap

import (
	"container/heap"
	"slices"

	"dits/internal/dataset"
)

// Result is one joinable dataset with its exact overlap |S_Q ∩ S_D|.
type Result struct {
	ID      int
	Name    string
	Overlap int
}

// Searcher is a top-k overlap search algorithm over one data source.
type Searcher interface {
	// Name identifies the algorithm (for benchmark tables).
	Name() string
	// TopK returns up to k results, ranked by overlap descending.
	TopK(q *dataset.Node, k int) []Result
}

// Better reports whether a ranks strictly better than b: larger overlap
// first, ties toward the smaller dataset ID. It is the single ranking
// relation every OJSP searcher (and the parallel executor in search/exec)
// must agree on, so top-k results are deterministic regardless of the
// order candidates were verified in.
func Better(a, b Result) bool {
	if a.Overlap != b.Overlap {
		return a.Overlap > b.Overlap
	}
	return a.ID < b.ID
}

// SortResults orders results best-first under Better, the order every
// searcher returns.
func SortResults(rs []Result) {
	slices.SortFunc(rs, func(a, b Result) int {
		switch {
		case Better(a, b):
			return -1
		case Better(b, a):
			return 1
		default:
			return 0
		}
	})
}

// less orders results worse-first for the min-heap: smaller overlap is
// worse; on ties, the larger ID is worse (so smaller IDs are kept).
func less(a, b Result) bool { return Better(b, a) }

// resultHeap is a min-heap whose head is the weakest kept result.
type resultHeap []Result

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return less(h[i], h[j]) }
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// topK maintains the running top-k during verification.
type topK struct {
	k int
	h resultHeap
}

func newTopK(k int) *topK { return &topK{k: k} }

// offer inserts r if it beats the current k-th best.
func (t *topK) offer(r Result) {
	if r.Overlap <= 0 {
		return
	}
	if t.h.Len() < t.k {
		heap.Push(&t.h, r)
		return
	}
	if less(t.h[0], r) {
		t.h[0] = r
		heap.Fix(&t.h, 0)
	}
}

// kthOverlap returns the overlap of the current k-th best result, or 0 when
// fewer than k results are held. A leaf whose upper bound is below this can
// be pruned in batch.
func (t *topK) kthOverlap() int {
	if t.h.Len() < t.k {
		return 0
	}
	return t.h[0].Overlap
}

// full reports whether k results are held.
func (t *topK) full() bool { return t.h.Len() >= t.k }

// sorted extracts the results ranked best-first.
func (t *topK) sorted() []Result {
	out := append([]Result(nil), t.h...)
	SortResults(out)
	return out
}

// rankCounts converts an id->overlap map into ranked top-k results,
// resolving names through the given function. It is shared by the
// inverted-index style baselines, which must rank every touched dataset.
func rankCounts(counts map[int]int, k int, name func(int) string) []Result {
	t := newTopK(k)
	for id, c := range counts {
		t.offer(Result{ID: id, Name: name(id), Overlap: c})
	}
	return t.sorted()
}
