package overlap

import (
	"math/rand"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/index/josie"
	"dits/internal/index/quadtree"
	"dits/internal/index/rtree"
	"dits/internal/index/sts3"
)

const theta = 7

func randomNodes(rng *rand.Rand, n int) []*dataset.Node {
	side := 1 << theta
	nodes := make([]*dataset.Node, 0, n)
	for i := 0; i < n; i++ {
		cx, cy := rng.Intn(side), rng.Intn(side)
		m := 1 + rng.Intn(25)
		ids := make([]uint64, m)
		for j := range ids {
			x := clamp(cx+rng.Intn(13)-6, 0, side-1)
			y := clamp(cy+rng.Intn(13)-6, 0, side-1)
			ids[j] = geo.ZEncode(uint32(x), uint32(y))
		}
		nodes = append(nodes, dataset.NewNodeFromCells(i, "", cellset.New(ids...)))
	}
	return nodes
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func grid() geo.Grid {
	side := float64(int64(1) << theta)
	return geo.NewGrid(theta, geo.Rect{MinX: 0, MinY: 0, MaxX: side, MaxY: side})
}

// allSearchers builds every searcher over the same corpus.
func allSearchers(nodes []*dataset.Node, f int) []Searcher {
	return []Searcher{
		&DITSSearcher{Index: dits.Build(grid(), nodes, f)},
		&QuadtreeSearcher{Index: quadtree.Build(theta, nodes)},
		&RtreeSearcher{Index: rtree.Build(8, nodes)},
		&STS3Searcher{Index: sts3.Build(nodes)},
		&JosieSearcher{Index: josie.Build(nodes)},
	}
}

func overlapsOf(rs []Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Overlap
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAllSearchersAgreeWithOracle is the central OJSP exactness property:
// every algorithm returns the same ranked overlap values as brute force,
// and every reported overlap is the true intersection size of that ID.
func TestAllSearchersAgreeWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nodes := randomNodes(rng, 400)
	byID := map[int]*dataset.Node{}
	for _, n := range nodes {
		byID[n.ID] = n
	}
	oracle := &BruteForce{Nodes: nodes}
	searchers := allSearchers(nodes, 8)

	for trial := 0; trial < 60; trial++ {
		q := randomNodes(rng, 1)[0]
		q.ID = -1
		for _, k := range []int{1, 5, 10, 40} {
			want := overlapsOf(oracle.TopK(q, k))
			for _, s := range searchers {
				got := s.TopK(q, k)
				if !equalInts(overlapsOf(got), want) {
					t.Fatalf("trial %d k=%d: %s returned overlaps %v, oracle %v",
						trial, k, s.Name(), overlapsOf(got), want)
				}
				for _, r := range got {
					if exact := byID[r.ID].Cells.IntersectCount(q.Cells); exact != r.Overlap {
						t.Fatalf("%s: dataset %d overlap %d, exact %d",
							s.Name(), r.ID, r.Overlap, exact)
					}
				}
			}
		}
	}
}

func TestNoBoundsAblationIsExact(t *testing.T) {
	// The DisableBounds ablation must return the same answers, only slower.
	rng := rand.New(rand.NewSource(17))
	nodes := randomNodes(rng, 300)
	idx := dits.Build(grid(), nodes, 8)
	with := &DITSSearcher{Index: idx}
	without := &DITSSearcher{Index: idx, DisableBounds: true}
	if with.Name() == without.Name() {
		t.Error("ablation variant should be distinguishable by name")
	}
	for trial := 0; trial < 40; trial++ {
		q := randomNodes(rng, 1)[0]
		q.ID = -1
		a := overlapsOf(with.TopK(q, 10))
		b := overlapsOf(without.TopK(q, 10))
		if !equalInts(a, b) {
			t.Fatalf("trial %d: bounds on %v, bounds off %v", trial, a, b)
		}
	}
}

func TestSearchersLeafCapacitySweep(t *testing.T) {
	// Fig. 12 varies f; exactness must hold for every capacity.
	rng := rand.New(rand.NewSource(2))
	nodes := randomNodes(rng, 200)
	oracle := &BruteForce{Nodes: nodes}
	for _, f := range []int{1, 2, 10, 30, 50} {
		s := &DITSSearcher{Index: dits.Build(grid(), nodes, f)}
		for trial := 0; trial < 20; trial++ {
			q := randomNodes(rng, 1)[0]
			q.ID = -1
			want := overlapsOf(oracle.TopK(q, 10))
			if got := overlapsOf(s.TopK(q, 10)); !equalInts(got, want) {
				t.Fatalf("f=%d trial %d: overlaps %v, want %v", f, trial, got, want)
			}
		}
	}
}

func TestEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nodes := randomNodes(rng, 50)
	q := randomNodes(rng, 1)[0]
	for _, s := range allSearchers(nodes, 4) {
		if got := s.TopK(nil, 5); got != nil {
			t.Errorf("%s: TopK(nil) = %v, want nil", s.Name(), got)
		}
		if got := s.TopK(q, 0); got != nil {
			t.Errorf("%s: TopK(k=0) = %v, want nil", s.Name(), got)
		}
		if got := s.TopK(q, 10000); len(got) > 50 {
			t.Errorf("%s: k larger than corpus returned %d results", s.Name(), len(got))
		}
		if s.Name() == "" {
			t.Error("searcher must be named")
		}
	}
	// A query entirely outside the data space overlaps nothing.
	far := dataset.NewNodeFromCells(-1, "", cellset.New(geo.ZEncode(1<<12, 1<<12)))
	for _, s := range allSearchers(nodes, 4) {
		if got := s.TopK(far, 5); len(got) != 0 {
			t.Errorf("%s: disjoint query returned %v", s.Name(), got)
		}
	}
}

func TestZeroOverlapExcluded(t *testing.T) {
	a := dataset.NewNodeFromCells(1, "a", cellset.New(geo.ZEncode(0, 0)))
	b := dataset.NewNodeFromCells(2, "b", cellset.New(geo.ZEncode(50, 50)))
	nodes := []*dataset.Node{a, b}
	q := dataset.NewNodeFromCells(-1, "", cellset.New(geo.ZEncode(0, 0)))
	for _, s := range allSearchers(nodes, 4) {
		got := s.TopK(q, 5)
		if len(got) != 1 || got[0].ID != 1 || got[0].Overlap != 1 {
			t.Errorf("%s: got %v, want only dataset 1", s.Name(), got)
		}
	}
}

func TestRankingDeterministicTieBreak(t *testing.T) {
	// Three datasets with identical overlap: smaller IDs win.
	q := dataset.NewNodeFromCells(-1, "", cellset.New(geo.ZEncode(3, 3)))
	var nodes []*dataset.Node
	for i := 0; i < 3; i++ {
		nodes = append(nodes, dataset.NewNodeFromCells(10-i, "", cellset.New(geo.ZEncode(3, 3))))
	}
	s := &BruteForce{Nodes: nodes}
	got := s.TopK(q, 2)
	if len(got) != 2 || got[0].ID != 8 || got[1].ID != 9 {
		t.Errorf("tie-break wrong: %v", got)
	}
}
