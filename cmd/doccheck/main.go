// Command doccheck is the docs-consistency gate run in CI: it fails when
// the code's public surface drifts out of the documentation.
//
//	go run ./cmd/doccheck            # check, exit 1 on drift
//	go run ./cmd/doccheck -v         # also list everything checked
//
// Two surfaces are checked:
//
//   - every exported Method* constant in internal/federation (the
//     federation RPC methods) must have its wire name documented in
//     docs/PROTOCOL.md;
//   - every flag registered by a command under cmd/ must appear, as
//     "-name", in README.md or one of the docs/*.md files;
//   - every Prometheus metric registered under internal/ or cmd/ (any
//     "dits_*" name passed to a registration call) must be documented in
//     docs/OPERATIONS.md;
//   - no file under internal/ or cmd/ may use the unstructured standard
//     "log" package — operational output goes through log/slog
//     (internal/obs.OpenLogger), so every record carries fields and can
//     carry a trace ID.
//
// The checker parses the Go source (go/ast), so new methods, flags, and
// metrics are picked up without maintaining a list here.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	verbose := flag.Bool("v", false, "list every checked method and flag")
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	protocol := readFile(filepath.Join(*root, "docs", "PROTOCOL.md"))
	docs := protocol + readFile(filepath.Join(*root, "README.md"))
	for _, extra := range globMust(filepath.Join(*root, "docs", "*.md")) {
		docs += readFile(extra)
	}

	var missing []string

	methods := methodConstants(filepath.Join(*root, "internal", "federation"))
	for _, m := range methods {
		if *verbose {
			fmt.Printf("method %-18s = %q\n", m.name, m.value)
		}
		if !strings.Contains(protocol, m.value) {
			missing = append(missing,
				fmt.Sprintf("federation method %s (%q) is not documented in docs/PROTOCOL.md", m.name, m.value))
		}
	}
	if len(methods) == 0 {
		missing = append(missing, "found no Method* constants in internal/federation (checker broken?)")
	}

	flags := cmdFlags(filepath.Join(*root, "cmd"))
	for _, f := range flags {
		if *verbose {
			fmt.Printf("flag   %-10s -%s\n", f.cmd, f.name)
		}
		if !strings.Contains(docs, "-"+f.name) {
			missing = append(missing,
				fmt.Sprintf("flag -%s of cmd/%s is not documented in README.md or docs/", f.name, f.cmd))
		}
	}
	if len(flags) == 0 {
		missing = append(missing, "found no flags under cmd/ (checker broken?)")
	}

	operations := readFile(filepath.Join(*root, "docs", "OPERATIONS.md"))
	names := metricNames([]string{filepath.Join(*root, "internal"), filepath.Join(*root, "cmd")})
	for _, m := range names {
		if *verbose {
			fmt.Printf("metric %s (%s)\n", m.name, m.at)
		}
		if !strings.Contains(operations, m.name) {
			missing = append(missing,
				fmt.Sprintf("metric %s (registered at %s) is not documented in docs/OPERATIONS.md", m.name, m.at))
		}
	}
	if len(names) == 0 {
		missing = append(missing, "found no dits_* metric registrations (checker broken?)")
	}

	for _, use := range stdlogUses([]string{filepath.Join(*root, "internal"), filepath.Join(*root, "cmd")}) {
		missing = append(missing,
			fmt.Sprintf("%s imports the unstructured \"log\" package; use log/slog via internal/obs.OpenLogger", use))
	}

	if len(missing) > 0 {
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, "doccheck:", m)
		}
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d federation methods, %d command flags, and %d metrics documented\n",
		len(methods), len(flags), len(names))
}

type metric struct{ name, at string }

// metricNames returns every Prometheus metric name registered under the
// given directories: any "dits_*" string literal passed as the first
// argument of a call in a non-test Go file. Matching the literal instead of
// the callee keeps wrapper helpers around Register* in scope.
func metricNames(dirs []string) []metric {
	seen := map[string]string{}
	walkGoFiles(dirs, func(path string, file *ast.File, fset *token.FileSet) {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || !strings.HasPrefix(name, "dits_") {
				return true
			}
			if _, dup := seen[name]; !dup {
				pos := fset.Position(lit.Pos())
				seen[name] = fmt.Sprintf("%s:%d", path, pos.Line)
			}
			return true
		})
	})
	out := make([]metric, 0, len(seen))
	for name, at := range seen {
		out = append(out, metric{name: name, at: at})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// stdlogUses returns the non-test files under dirs that import the
// unstructured standard "log" package ("log/slog" is fine).
func stdlogUses(dirs []string) []string {
	var out []string
	walkGoFiles(dirs, func(path string, file *ast.File, _ *token.FileSet) {
		for _, imp := range file.Imports {
			if imp.Path.Value == `"log"` {
				out = append(out, path)
			}
		}
	})
	sort.Strings(out)
	return out
}

// walkGoFiles parses every non-test .go file under the given directories
// and hands each to fn.
func walkGoFiles(dirs []string, fn func(path string, file *ast.File, fset *token.FileSet)) {
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return err
			}
			fn(path, file, fset)
			return nil
		})
		if err != nil {
			fatal(err)
		}
	}
}

type method struct{ name, value string }

// methodConstants returns every exported Method* string constant declared
// in the package directory.
func methodConstants(dir string) []method {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, 0)
	if err != nil {
		fatal(err)
	}
	var out []method
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				vs, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for i, id := range vs.Names {
					if !strings.HasPrefix(id.Name, "Method") || i >= len(vs.Values) {
						continue
					}
					if lit, ok := vs.Values[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
						v, err := strconv.Unquote(lit.Value)
						if err == nil {
							out = append(out, method{name: id.Name, value: v})
						}
					}
				}
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

type cmdFlag struct{ cmd, name string }

// cmdFlags returns every flag name registered via the flag package by the
// commands under cmdDir (flag.String, flag.IntVar, ... — the name is the
// first string-literal argument).
func cmdFlags(cmdDir string) []cmdFlag {
	entries, err := os.ReadDir(cmdDir)
	if err != nil {
		fatal(err)
	}
	var out []cmdFlag
	seen := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, filepath.Join(cmdDir, e.Name()), nil, 0)
		if err != nil {
			fatal(err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "flag" {
						return true
					}
					if !flagRegisterFuncs[sel.Sel.Name] {
						return true
					}
					// Registration funcs take the name as the first string
					// literal argument (Xxx: arg 0, XxxVar: arg 1).
					for _, arg := range call.Args {
						lit, ok := arg.(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							continue
						}
						name, err := strconv.Unquote(lit.Value)
						if err == nil && name != "" {
							key := e.Name() + "|" + name
							if !seen[key] {
								seen[key] = true
								out = append(out, cmdFlag{cmd: e.Name(), name: name})
							}
						}
						break
					}
					return true
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].cmd != out[j].cmd {
			return out[i].cmd < out[j].cmd
		}
		return out[i].name < out[j].name
	})
	return out
}

// flagRegisterFuncs are the flag-package functions that register a flag.
var flagRegisterFuncs = map[string]bool{
	"Bool": true, "BoolVar": true,
	"Int": true, "IntVar": true,
	"Int64": true, "Int64Var": true,
	"Uint": true, "UintVar": true,
	"Uint64": true, "Uint64Var": true,
	"Float64": true, "Float64Var": true,
	"String": true, "StringVar": true,
	"Duration": true, "DurationVar": true,
}

func readFile(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	return string(data)
}

func globMust(pattern string) []string {
	out, err := filepath.Glob(pattern)
	if err != nil {
		fatal(err)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doccheck:", err)
	os.Exit(1)
}
