// Command datagen generates the synthetic five-source workload (the
// stand-in for the paper's Table I portals) and persists each source as a
// gob file that ditsquery and downstream tools can load. With -updates N
// it additionally emits updates.trace, a reproducible JSONL mutation
// trace (dataset puts, updates, deletes across the sources) consumed by
// `ditsbench -exp ingest -trace` and the ingest examples.
//
// Usage:
//
//	datagen -out data/ -scale 0.05 -seed 1
//	datagen -out data/ -updates 500     # also write data/updates.trace
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dits/internal/workload"
)

func main() {
	out := flag.String("out", "data", "output directory")
	scale := flag.Float64("scale", 0.02, "dataset-count scale as a multiple of the paper's Table I (values > 1 grow past it)")
	seed := flag.Int64("seed", 1, "generation seed")
	updates := flag.Int("updates", 0, "also emit a mutation trace of N entries (updates.trace)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sources := workload.GenerateAll(*scale, *seed)
	for _, src := range sources {
		path := filepath.Join(*out, src.Name+".gob")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := gob.NewEncoder(f).Encode(src); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st := src.ComputeStats()
		fmt.Printf("%-8s %6d datasets %9d points -> %s\n",
			src.Name, st.NumDatasets, st.NumPoints, path)
	}
	if *updates > 0 {
		// The trace seed is derived from -seed so the whole output
		// directory is a pure function of the flags.
		trace := workload.GenerateTrace(sources, *updates, *seed+1000)
		path := filepath.Join(*out, "updates.trace")
		if err := workload.WriteTraceFile(path, trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var puts, deletes int
		for _, m := range trace {
			if m.Op == workload.MutDelete {
				deletes++
			} else {
				puts++
			}
		}
		fmt.Printf("%-8s %6d mutations (%d puts, %d deletes) -> %s\n",
			"trace", len(trace), puts, deletes, path)
	}
}
