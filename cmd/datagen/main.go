// Command datagen generates the synthetic five-source workload (the
// stand-in for the paper's Table I portals) and persists each source as a
// gob file that ditsquery and downstream tools can load.
//
// Usage:
//
//	datagen -out data/ -scale 0.05 -seed 1
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dits/internal/workload"
)

func main() {
	out := flag.String("out", "data", "output directory")
	scale := flag.Float64("scale", 0.02, "fraction of Table I dataset counts")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, src := range workload.GenerateAll(*scale, *seed) {
		path := filepath.Join(*out, src.Name+".gob")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := gob.NewEncoder(f).Encode(src); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st := src.ComputeStats()
		fmt.Printf("%-8s %6d datasets %9d points -> %s\n",
			src.Name, st.NumDatasets, st.NumPoints, path)
	}
}
