// Command ditscenter runs one federation center of a sharded cluster: it
// serves the cluster protocol (cluster.info, cluster.register/unregister,
// cluster.overlap/batch/covstep, cluster.put/delete) over TCP, dials the
// sources a gateway assigns to its shard, and answers scatter/gather
// queries over exactly those sources.
//
// With -memberlog the accepted membership is persisted through the same
// torn-tail-tolerant framed log the ingest WAL uses: a restarted center
// replays the log and re-adopts its shard with no gateway involvement. A
// logged source that cannot be re-dialed at boot is skipped (and logged),
// not fatal — the gateway's health plane re-registers it when it
// reconciles.
//
// Usage:
//
//	ditsserve -source data/Transit.gob -addr 127.0.0.1:7101 -bounds=-180,-90,180,90 -theta 12
//	ditscenter -addr 127.0.0.1:7201 -name center-a \
//	           -bounds=-180,-90,180,90 -theta 12 -memberlog state/center-a/members.log
//	ditsgate -addr 127.0.0.1:8080 -cluster center-a=127.0.0.1:7201,center-b=127.0.0.1:7202 \
//	         -cluster-sources Transit=127.0.0.1:7101 -bounds=-180,-90,180,90 -theta 12
//
// -bounds and -theta must match the sources and the gateway: the grid
// derived from them defines the cell IDs the whole federation shares.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dits/internal/cache"
	"dits/internal/federation"
	"dits/internal/geo"
	"dits/internal/metrics"
	"dits/internal/obs"
	"dits/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	name := flag.String("name", "", "this center's cluster name (required; the gateway addresses shards by it)")
	theta := flag.Int("theta", 12, "grid resolution θ (must match the federation)")
	boundsFlag := flag.String("bounds", "", "shared world bounds minX,minY,maxX,maxY (required; must match the sources)")
	memberLog := flag.String("memberlog", "", "membership log path; empty = membership is lost on restart")
	fsyncFlag := flag.Bool("fsync", true, "flush every membership append before acknowledging it")
	poolSize := flag.Int("pool", 8, "TCP connections per source")
	cacheSize := flag.Int("cache", 4096, "result cache capacity in entries (0 disables)")
	workers := flag.Int("workers", 0, "worker pool for batch prep and merge (0 = GOMAXPROCS)")
	noFilter := flag.Bool("no-filter", false, "disable DITS-G candidate filtering")
	noClip := flag.Bool("no-clip", false, "disable per-source query clipping")
	stateless := flag.Bool("stateless", false, "disable the CJSP session protocol (ship full state every round)")
	tolerant := flag.Bool("tolerant", false, "skip failed sources mid-query instead of failing the query")
	logFile := flag.String("log-file", "", "append operational logs to this file instead of stderr")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text exposition, pprof, and /debug/traces at this address (empty = off)")
	slowQuery := flag.Duration("slow-query", 0, "log any served request whose trace lasts at least this long, with its full span tree (0 disables)")
	flag.Parse()

	logger, logClose, err := obs.OpenLogger(*logFile, *logFormat)
	if err != nil {
		fail(err)
	}
	defer logClose()

	if *name == "" {
		fail(fmt.Errorf("-name is required (the cluster addresses shards by center name)"))
	}
	if *boundsFlag == "" {
		fail(fmt.Errorf("-bounds is required and must match the sources' -bounds"))
	}
	bounds, err := parseBounds(*boundsFlag)
	if err != nil {
		fail(err)
	}

	opts := federation.Options{GlobalFilter: !*noFilter, ClipQuery: !*noClip, Sessions: !*stateless, Workers: *workers}
	if *tolerant {
		opts.OnSourceError = federation.SkipFailed
	}
	center := federation.NewCenter(geo.NewGrid(*theta, bounds), opts)
	center.SetCache(cache.New(*cacheSize))

	cs, err := federation.NewCenterServer(*name, center, federation.CenterServerOptions{
		MemberLog: *memberLog,
		Fsync:     *fsyncFlag,
		PoolSize:  *poolSize,
	})
	if err != nil {
		fail(err)
	}
	defer cs.Close()
	if skipped := cs.Skipped(); len(skipped) > 0 {
		logger.Warn("skipped unreachable logged members; the gateway re-registers them on reconcile",
			"count", len(skipped), "members", strings.Join(skipped, ", "))
	}

	rec := obs.NewRecorder(obs.RecorderOptions{SlowThreshold: *slowQuery, Logger: logger})
	if *metricsAddr != "" {
		reg := metrics.NewRegistry()
		reg.RegisterGaugeFunc("dits_center_sources", "Sources registered at this center's shard",
			func() float64 { return float64(center.NumSources()) })
		rec.Register(reg)
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		mux.Handle("GET /debug/traces", rec.DebugHandler())
		mux.Handle("GET /debug/traces/", rec.DebugHandler())
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go msrv.ListenAndServe()
		defer msrv.Close()
		logger.Info("metrics listener up", "addr", *metricsAddr)
	}

	ts, err := transport.ServeWith(*addr, cs.Handler(), transport.ServeConfig{Recorder: rec})
	if err != nil {
		fail(err)
	}
	defer ts.Close()
	logger.Info("center serving",
		"center", *name, "sources", center.NumSources(), "addr", ts.Addr(),
		"memberlog", *memberLog, "cache", *cacheSize)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("shutting down")
}

func parseBounds(s string) (geo.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geo.Rect{}, fmt.Errorf("bounds must be minX,minY,maxX,maxY, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geo.Rect{}, fmt.Errorf("bad bounds component %q: %w", p, err)
		}
		vals[i] = v
	}
	r := geo.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if r.IsEmpty() {
		return geo.Rect{}, fmt.Errorf("bounds %q are empty", s)
	}
	return r, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ditscenter:", err)
	os.Exit(1)
}
