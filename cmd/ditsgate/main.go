// Command ditsgate is the HTTP/JSON gateway of a federation: it connects
// to running ditsserve sources over pooled TCP connections, maintains the
// DITS-G global index and a sharded LRU result cache, and serves search
// queries to ordinary HTTP clients.
//
// Usage:
//
//	datagen -out data
//	ditsserve -source data/Transit.gob -addr 127.0.0.1:7101 -bounds=-180,-90,180,90 -theta 12
//	ditsserve -source data/Baidu.gob   -addr 127.0.0.1:7102 -bounds=-180,-90,180,90 -theta 12
//	ditsgate -addr 127.0.0.1:8080 -remote 127.0.0.1:7101,127.0.0.1:7102 \
//	         -bounds=-180,-90,180,90 -theta 12 -pool 8 -cache 4096
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/search/overlap \
//	     -d '{"points":[[116.3,39.9],[116.4,39.95]],"k":5}'
//
// -bounds and -theta must match the values the ditsserve sources were
// started with: the grid derived from them defines the cell IDs the whole
// federation shares. See docs/PROTOCOL.md for the endpoint payloads.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dits/internal/admission"
	"dits/internal/cache"
	"dits/internal/federation"
	"dits/internal/gateway"
	"dits/internal/geo"
	"dits/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	remote := flag.String("remote", "", "comma-separated ditsserve addresses (required)")
	theta := flag.Int("theta", 12, "grid resolution θ (must match the sources)")
	boundsFlag := flag.String("bounds", "", "shared world bounds minX,minY,maxX,maxY (required; must match the sources)")
	poolSize := flag.Int("pool", 8, "TCP connections per source")
	cacheSize := flag.Int("cache", 4096, "result cache capacity in entries (0 disables)")
	noFilter := flag.Bool("no-filter", false, "disable DITS-G candidate filtering")
	noClip := flag.Bool("no-clip", false, "disable per-source query clipping")
	stateless := flag.Bool("stateless", false, "disable the CJSP session protocol (ship full state every round)")
	tolerant := flag.Bool("tolerant", false, "skip failed sources mid-query instead of failing the query")
	workers := flag.Int("workers", 0, "center-side worker pool for POST /search/batch prep and merge (0 = GOMAXPROCS)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client request rate limit in req/s (0 disables)")
	burst := flag.Int("burst", 0, "per-client burst size (0 = ceil(rate-limit))")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing requests (0 = unbounded)")
	maxQueue := flag.Int("max-queue", 0, "max requests queued for an in-flight slot before shedding")
	deadline := flag.Duration("deadline", 0, "per-request deadline propagated to the sources (0 = none)")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	codecFlag := flag.String("codec", "", "force one wire codec by name instead of negotiating the best (empty = negotiate)")
	noCompress := flag.Bool("no-compress", false, "do not offer gzip compression when dialing sources")
	logFile := flag.String("log-file", "", "append operational logs to this file instead of stderr")
	flag.Parse()

	logf, logClose, err := openLog(*logFile)
	if err != nil {
		fail(err)
	}
	defer logClose()

	if *remote == "" {
		fail(fmt.Errorf("-remote is required (comma-separated ditsserve addresses)"))
	}
	if *boundsFlag == "" {
		fail(fmt.Errorf("-bounds is required and must match the sources' -bounds"))
	}
	bounds, err := parseBounds(*boundsFlag)
	if err != nil {
		fail(err)
	}

	opts := federation.Options{GlobalFilter: !*noFilter, ClipQuery: !*noClip, Sessions: !*stateless, Workers: *workers}
	if *tolerant {
		opts.OnSourceError = federation.SkipFailed
	}
	center := federation.NewCenter(geo.NewGrid(*theta, bounds), opts)
	center.SetCache(cache.New(*cacheSize))

	dialCfg := transport.DialConfig{Codec: *codecFlag, NoCompress: *noCompress}
	if *codecFlag != "" {
		if _, ok := transport.LookupCodec(*codecFlag); !ok {
			fail(fmt.Errorf("-codec: unknown codec %q (registered: %s)",
				*codecFlag, strings.Join(transport.CodecNames(), ", ")))
		}
	}
	for _, a := range strings.Split(*remote, ",") {
		a = strings.TrimSpace(a)
		pool := transport.DialPoolWith(a, a, *poolSize, center.Metrics, dialCfg)
		summary, err := center.RegisterRemote(context.Background(), pool)
		if err != nil {
			fail(fmt.Errorf("register %s: %w", a, err))
		}
		wi := pool.WireInfo()
		logf("registered source %q at %s (pool=%d, codec=%s, compression=%v)",
			summary.Name, a, *poolSize, wi.Codec, wi.Compression)
	}

	gw := gateway.NewWithOptions(center, gateway.Options{
		Admission: admission.Config{
			Rate:        *rateLimit,
			Burst:       *burst,
			MaxInFlight: *maxInflight,
			MaxQueue:    *maxQueue,
			Deadline:    *deadline,
		},
		EnablePprof: *pprofFlag,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logf("gateway serving %d sources on http://%s (cache=%d entries)",
		center.NumSources(), *addr, *cacheSize)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fail(err)
	case <-stop:
		logf("shutting down")
		srv.Close()
	}
}

// openLog returns a printf-style logger writing to stderr, or appending
// to path when given, plus a close func. Operational output never goes to
// stdout: tools started with shell redirection should not scatter log
// files into whatever the working directory happens to be.
func openLog(path string) (func(format string, args ...any), func(), error) {
	out := os.Stderr
	closeFn := func() {}
	if path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("open -log-file: %w", err)
		}
		out = f
		closeFn = func() { f.Close() }
	}
	logger := log.New(out, "", log.LstdFlags)
	return func(format string, args ...any) { logger.Printf(format, args...) }, closeFn, nil
}

func parseBounds(s string) (geo.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geo.Rect{}, fmt.Errorf("bounds must be minX,minY,maxX,maxY, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geo.Rect{}, fmt.Errorf("bad bounds component %q: %w", p, err)
		}
		vals[i] = v
	}
	r := geo.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if r.IsEmpty() {
		return geo.Rect{}, fmt.Errorf("bounds %q are empty", s)
	}
	return r, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ditsgate:", err)
	os.Exit(1)
}
