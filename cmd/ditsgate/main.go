// Command ditsgate is the HTTP/JSON gateway of a federation: it connects
// to running ditsserve sources over pooled TCP connections, maintains the
// DITS-G global index and a sharded LRU result cache, and serves search
// queries to ordinary HTTP clients.
//
// Usage:
//
//	datagen -out data
//	ditsserve -source data/Transit.gob -addr 127.0.0.1:7101 -bounds=-180,-90,180,90 -theta 12
//	ditsserve -source data/Baidu.gob   -addr 127.0.0.1:7102 -bounds=-180,-90,180,90 -theta 12
//	ditsgate -addr 127.0.0.1:8080 -remote 127.0.0.1:7101,127.0.0.1:7102 \
//	         -bounds=-180,-90,180,90 -theta 12 -pool 8 -cache 4096
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/search/overlap \
//	     -d '{"points":[[116.3,39.9],[116.4,39.95]],"k":5}'
//
// With -cluster the gateway fronts a sharded plane of ditscenter
// processes instead of one built-in center: the -cluster-sources roster is
// partitioned across the centers by consistent hash, queries scatter to
// every healthy center and merge at the gateway (byte-identical to the
// single-center answers), and a center that stops answering is failed over
// — its shard re-homes onto the survivors. A source listed with
// `Name=primary+replica` addresses is served through its replica when the
// primary dies.
//
// -bounds and -theta must match the values the ditsserve sources were
// started with: the grid derived from them defines the cell IDs the whole
// federation shares. See docs/PROTOCOL.md for the endpoint payloads.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dits/internal/admission"
	"dits/internal/cache"
	"dits/internal/federation"
	"dits/internal/gateway"
	"dits/internal/geo"
	"dits/internal/obs"
	"dits/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	remote := flag.String("remote", "", "comma-separated ditsserve addresses (single-center mode)")
	clusterFlag := flag.String("cluster", "", "comma-separated name=addr ditscenter endpoints (cluster mode; mutually exclusive with -remote)")
	clusterSources := flag.String("cluster-sources", "", "comma-separated Name=addr[+replica...] source roster for -cluster; '+' separates the primary from read replicas")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "period between center health probes in cluster mode (0 disables)")
	theta := flag.Int("theta", 12, "grid resolution θ (must match the sources)")
	boundsFlag := flag.String("bounds", "", "shared world bounds minX,minY,maxX,maxY (required; must match the sources)")
	poolSize := flag.Int("pool", 8, "TCP connections per source")
	cacheSize := flag.Int("cache", 4096, "result cache capacity in entries (0 disables)")
	noFilter := flag.Bool("no-filter", false, "disable DITS-G candidate filtering")
	noClip := flag.Bool("no-clip", false, "disable per-source query clipping")
	stateless := flag.Bool("stateless", false, "disable the CJSP session protocol (ship full state every round)")
	tolerant := flag.Bool("tolerant", false, "skip failed sources mid-query instead of failing the query")
	workers := flag.Int("workers", 0, "center-side worker pool for POST /search/batch prep and merge (0 = GOMAXPROCS)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client request rate limit in req/s (0 disables)")
	burst := flag.Int("burst", 0, "per-client burst size (0 = ceil(rate-limit))")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing requests (0 = unbounded)")
	maxQueue := flag.Int("max-queue", 0, "max requests queued for an in-flight slot before shedding")
	deadline := flag.Duration("deadline", 0, "per-request deadline propagated to the sources (0 = none)")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	codecFlag := flag.String("codec", "", "force one wire codec by name instead of negotiating the best (empty = negotiate)")
	noCompress := flag.Bool("no-compress", false, "do not offer gzip compression when dialing sources")
	logFile := flag.String("log-file", "", "append operational logs to this file instead of stderr")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	slowQuery := flag.Duration("slow-query", 0, "log any request whose trace lasts at least this long, with its full span tree (0 disables)")
	traceRing := flag.Int("trace-ring", 0, "completed traces kept for GET /debug/traces (0 = default capacity)")
	noTrace := flag.Bool("no-trace", false, "disable per-request tracing entirely")
	flag.Parse()

	logger, logClose, err := obs.OpenLogger(*logFile, *logFormat)
	if err != nil {
		fail(err)
	}
	defer logClose()

	if (*remote == "") == (*clusterFlag == "") {
		fail(fmt.Errorf("exactly one of -remote (single-center) or -cluster (sharded) is required"))
	}
	if *clusterFlag != "" && *clusterSources == "" {
		fail(fmt.Errorf("-cluster requires -cluster-sources (the roster to shard across the centers)"))
	}
	if *boundsFlag == "" {
		fail(fmt.Errorf("-bounds is required and must match the sources' -bounds"))
	}
	bounds, err := parseBounds(*boundsFlag)
	if err != nil {
		fail(err)
	}
	grid := geo.NewGrid(*theta, bounds)

	dialCfg := transport.DialConfig{Codec: *codecFlag, NoCompress: *noCompress, NoTrace: *noTrace}
	if *codecFlag != "" {
		if _, ok := transport.LookupCodec(*codecFlag); !ok {
			fail(fmt.Errorf("-codec: unknown codec %q (registered: %s)",
				*codecFlag, strings.Join(transport.CodecNames(), ", ")))
		}
	}
	gwOpts := gateway.Options{
		Admission: admission.Config{
			Rate:        *rateLimit,
			Burst:       *burst,
			MaxInFlight: *maxInflight,
			MaxQueue:    *maxQueue,
			Deadline:    *deadline,
		},
		EnablePprof:    *pprofFlag,
		SlowTrace:      *slowQuery,
		TraceCapacity:  *traceRing,
		DisableTracing: *noTrace,
		Logger:         logger,
	}

	var gw *gateway.Gateway
	var describe string
	if *clusterFlag != "" {
		cluster, err := buildCluster(grid, *clusterFlag, *clusterSources, *poolSize, dialCfg, logger)
		if err != nil {
			fail(err)
		}
		defer cluster.Close()
		if *healthInterval > 0 {
			go func() {
				for range time.Tick(*healthInterval) {
					ctx, cancel := context.WithTimeout(context.Background(), *healthInterval)
					if downed := cluster.Probe(ctx); downed > 0 {
						st := cluster.Stats()
						logger.Warn("health probe failed over centers",
							"downed", downed, "healthy", st.Healthy,
							"centers", st.Centers, "generation", st.Generation)
					}
					cancel()
				}
			}()
		}
		gw = gateway.NewCluster(cluster, gwOpts)
		st := cluster.Stats()
		describe = fmt.Sprintf("%d sources sharded over %d centers", cluster.NumSources(), st.Centers)
	} else {
		opts := federation.Options{GlobalFilter: !*noFilter, ClipQuery: !*noClip, Sessions: !*stateless, Workers: *workers}
		if *tolerant {
			opts.OnSourceError = federation.SkipFailed
		}
		center := federation.NewCenter(grid, opts)
		center.SetCache(cache.New(*cacheSize))
		for _, a := range strings.Split(*remote, ",") {
			a = strings.TrimSpace(a)
			pool := transport.DialPoolWith(a, a, *poolSize, center.Metrics, dialCfg)
			summary, err := center.RegisterRemote(context.Background(), pool)
			if err != nil {
				fail(fmt.Errorf("register %s: %w", a, err))
			}
			wi := pool.WireInfo()
			logger.Info("registered source",
				"source", summary.Name, "addr", a, "pool", *poolSize,
				"codec", wi.Codec, "compression", wi.Compression, "trace", wi.Trace)
		}
		gw = gateway.NewWithOptions(center, gwOpts)
		describe = fmt.Sprintf("%d sources", center.NumSources())
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("gateway serving", "federation", describe, "addr", *addr, "cache", *cacheSize)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fail(err)
	case <-stop:
		logger.Info("shutting down")
		srv.Close()
	}
}

// buildCluster dials the ditscenter endpoints of -cluster, builds the
// sharded plane, and registers the -cluster-sources roster across it.
func buildCluster(grid geo.Grid, centersSpec, sourcesSpec string, poolSize int, dialCfg transport.DialConfig, logger *slog.Logger) (*federation.Cluster, error) {
	met := &transport.Metrics{}
	peers := make(map[string]transport.Peer)
	for _, part := range strings.Split(centersSpec, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("-cluster entry %q must be name=addr", part)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("-cluster names center %q twice", name)
		}
		peers[name] = transport.DialPoolWith(name, addr, poolSize, met, dialCfg)
	}
	cluster := federation.NewCluster(grid, peers)
	// The pools observe through met; point the cluster's /stats surface at
	// the same counters.
	cluster.Metrics = met
	for _, part := range strings.Split(sourcesSpec, ",") {
		name, addrs, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addrs == "" {
			return nil, fmt.Errorf("-cluster-sources entry %q must be Name=addr[+replica...]", part)
		}
		endpoints := strings.Split(addrs, "+")
		src := federation.ClusterSource{Name: name, Addr: endpoints[0], Replicas: endpoints[1:]}
		if err := cluster.AddSource(context.Background(), src); err != nil {
			return nil, fmt.Errorf("register source %s: %w", name, err)
		}
		logger.Info("sharded source",
			"source", name, "addr", src.Addr, "replicas", len(src.Replicas),
			"center", cluster.Stats().SourceOwners[name])
	}
	return cluster, nil
}

func parseBounds(s string) (geo.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geo.Rect{}, fmt.Errorf("bounds must be minX,minY,maxX,maxY, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geo.Rect{}, fmt.Errorf("bad bounds component %q: %w", p, err)
		}
		vals[i] = v
	}
	r := geo.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if r.IsEmpty() {
		return geo.Rect{}, fmt.Errorf("bounds %q are empty", s)
	}
	return r, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ditsgate:", err)
	os.Exit(1)
}
