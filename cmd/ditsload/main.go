// Command ditsload is the production load harness: it drives mixed
// OJSP/CJSP/batch/ingest traffic at a running ditsgate in open-loop
// (paced arrivals, coordinated-omission-corrected latencies) or
// closed-loop (N back-to-back clients) mode and reports throughput,
// latency quantiles (p50/p99/p999), and error/shed rates.
//
// Usage:
//
//	ditsload -target http://127.0.0.1:8080 -mode closed -clients 16 -duration 30s
//	ditsload -target http://127.0.0.1:8080 -mode open -rate 500 -duration 1m \
//	         -mix overlap=70,coverage=15,batch=10,ingest=5 -ingest-source Transit
//	ditsload -selftest -duration 5s          # no external gateway needed
//
// -selftest stands up a small in-process federation behind a real HTTP
// listener and drives it — the CI smoke path. With -json the machine-
// readable result is printed instead of the human summary. See
// docs/OPERATIONS.md for the runbook.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dits/internal/load"
)

func main() {
	target := flag.String("target", "", "gateway base URL, e.g. http://127.0.0.1:8080")
	selftest := flag.Bool("selftest", false, "drive an in-process gateway instead of -target")
	mode := flag.String("mode", "closed", "load mode: open (paced arrivals) or closed (back-to-back clients)")
	rate := flag.Float64("rate", 100, "open-loop arrival rate in req/s")
	clients := flag.Int("clients", 8, "closed-loop concurrent clients")
	duration := flag.Duration("duration", 10*time.Second, "how long to offer load")
	mixFlag := flag.String("mix", "", "traffic mix, e.g. overlap=70,coverage=15,batch=10,ingest=5 (default: built-in blend)")
	k := flag.Int("k", 10, "max k per generated query (each draws k in [1,k])")
	delta := flag.Float64("delta", 10, "connectivity threshold δ for coverage queries")
	points := flag.Int("points", 16, "points per generated query")
	batchSize := flag.Int("batch", 8, "queries per generated batch request")
	ingestSource := flag.String("ingest-source", "", "source name for ingest upserts ('' drops ingest from the mix)")
	seed := flag.Int64("seed", 1, "traffic seed (reproducible runs)")
	clientID := flag.String("client-id", "ditsload", "X-Client-ID header prefix ('' sends none)")
	jsonOut := flag.Bool("json", false, "print the machine-readable JSON result")
	flag.Parse()

	opts := load.Options{
		Target:         *target,
		Mode:           *mode,
		Rate:           *rate,
		Clients:        *clients,
		Duration:       *duration,
		K:              *k,
		Delta:          *delta,
		PointsPerQuery: *points,
		BatchSize:      *batchSize,
		IngestSource:   *ingestSource,
		Seed:           *seed,
		ClientID:       *clientID,
	}
	if *mixFlag != "" {
		m, err := load.ParseMix(*mixFlag)
		if err != nil {
			fail(err)
		}
		opts.Mix = m
	}

	if *selftest {
		lg, err := load.StartLocal(load.LocalOptions{Sources: 2, Mutable: true})
		if err != nil {
			fail(err)
		}
		defer lg.Close()
		opts.Target = lg.URL
		if opts.IngestSource == "" {
			opts.IngestSource = lg.IngestSource
			if *mixFlag == "" {
				opts.Mix = load.DefaultMix()
			}
		}
		fmt.Fprintf(os.Stderr, "selftest gateway on %s (ingest source %q)\n", lg.URL, lg.IngestSource)
	} else if opts.Target == "" {
		fail(fmt.Errorf("-target is required (or use -selftest)"))
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	res, err := load.Run(ctx, opts)
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
		return
	}
	printResult(res)
	// A run that only ever errored is a failed run; shed traffic is not
	// (shedding is the gateway working as configured).
	if res.OK == 0 && res.Sent > 0 {
		fail(fmt.Errorf("no request succeeded (%d sent)", res.Sent))
	}
}

func printResult(r load.Result) {
	if r.Mode == "open" {
		fmt.Printf("open loop @ %.0f req/s for %.1fs\n", r.Rate, r.Seconds)
	} else {
		fmt.Printf("closed loop @ %d clients for %.1fs\n", r.Clients, r.Seconds)
	}
	fmt.Printf("  sent %d  ok %d  shed %d  4xx %d  5xx %d  net %d\n",
		r.Sent, r.OK, r.Shed, r.ClientErrors, r.ServerErrors, r.NetErrors)
	fmt.Printf("  throughput %.1f ok/s   shed rate %.2f%%   error rate %.2f%%\n",
		r.Throughput, 100*r.ShedRate, 100*r.ErrorRate)
	fmt.Printf("  latency ms: p50 %.2f  p99 %.2f  p999 %.2f  max %.2f  mean %.2f\n",
		r.P50Ms, r.P99Ms, r.P999Ms, r.MaxMs, r.MeanMs)
	for _, op := range []string{"overlap", "coverage", "batch", "ingest"} {
		c, ok := r.PerOp[op]
		if !ok || c.Sent == 0 {
			continue
		}
		fmt.Printf("  %-8s sent %-6d ok %-6d shed %-5d err %d\n", op, c.Sent, c.OK, c.Shed, c.Err)
	}
	if len(r.Slowest) > 0 {
		fmt.Printf("  slowest requests (GET /debug/traces/{id} for the span tree):\n")
		for _, s := range r.Slowest {
			fmt.Printf("    %8.2fms  %-8s %d  trace %s\n", s.Ms, s.Op, s.Status, s.TraceID)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ditsload:", err)
	os.Exit(1)
}
