// Command ditsquery runs one-shot overlap and coverage joinable searches,
// either against an in-process federation built from a datagen directory,
// or against running ditsserve sources over TCP.
//
// Usage:
//
//	datagen -out data
//	ditsquery -data data -mode overlap -query Transit:5 -k 10
//	ditsquery -data data -mode coverage -query Baidu:0 -k 5 -delta 10
//	ditsquery -data data -remote 127.0.0.1:7101,127.0.0.1:7102 \
//	          -bounds=-180,-90,180,90 -mode overlap -query Transit:5
//
// The query is 'Source:index': the points of that dataset become the query
// point set, mirroring the paper's query sampling. In -remote mode, -data
// is still used to resolve the query dataset, and -bounds/-theta must
// match the running sources. For a long-lived HTTP front-end over the same
// sources, see ditsgate.
package main

import (
	"context"
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dits/internal/cellset"
	"dits/internal/core"
	"dits/internal/dataset"
	"dits/internal/federation"
	"dits/internal/geo"
	"dits/internal/transport"
)

func main() {
	dataDir := flag.String("data", "data", "directory of datagen .gob sources (query datasets come from here)")
	remote := flag.String("remote", "", "comma-separated ditsserve addresses; empty = in-process federation of -data")
	mode := flag.String("mode", "overlap", "overlap or coverage")
	query := flag.String("query", "", "query dataset as Source:index (e.g. Transit:5)")
	k := flag.Int("k", 10, "number of results")
	delta := flag.Float64("delta", 10, "connectivity threshold δ in cells (coverage mode)")
	theta := flag.Int("theta", 12, "grid resolution θ")
	boundsFlag := flag.String("bounds", "", "shared world bounds minX,minY,maxX,maxY (remote mode; default: union of -data sources)")
	flag.Parse()

	sources, err := loadSources(*dataDir)
	if err != nil {
		fail(err)
	}
	if len(sources) == 0 {
		fail(fmt.Errorf("no .gob sources in %s (run datagen first)", *dataDir))
	}
	qPoints, qLabel, err := resolveQuery(sources, *query)
	if err != nil {
		fail(err)
	}

	var run searchRunner
	if *remote != "" {
		run, err = dialRemote(*remote, sources, *theta, *boundsFlag)
	} else {
		run, err = localFederation(sources, *theta)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("query %s (%d points)\n\n", qLabel, len(qPoints))

	switch *mode {
	case "overlap":
		rs, err := run.overlap(qPoints, *k)
		if err != nil {
			fail(err)
		}
		fmt.Printf("top-%d overlap joinable datasets:\n", *k)
		for i, r := range rs {
			fmt.Printf("%2d. %-10s %-16s overlap=%d cells\n", i+1, r.Source, r.Name, r.Score)
		}
	case "coverage":
		res, err := run.coverage(qPoints, *delta, *k)
		if err != nil {
			fail(err)
		}
		fmt.Printf("coverage joinable search (δ=%g): query covers %d cells\n", *delta, res.QueryCoverage)
		for i, r := range res.Results {
			fmt.Printf("%2d. %-10s %-16s gain=+%d cells\n", i+1, r.Source, r.Name, r.Score)
		}
		fmt.Printf("total coverage: %d cells (%.1fx the query alone)\n",
			res.Coverage, float64(res.Coverage)/float64(max(res.QueryCoverage, 1)))
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
	fmt.Printf("\ncommunication: %d messages, %d bytes\n",
		run.metrics().Messages(), run.metrics().Bytes())
}

// searchRunner abstracts the local in-process federation and the remote
// (ditsserve) deployment behind the two searches.
type searchRunner struct {
	overlap  func(pts []geo.Point, k int) ([]core.Result, error)
	coverage func(pts []geo.Point, delta float64, k int) (core.CoverageOutcome, error)
	metrics  func() *transport.Metrics
}

func localFederation(sources []*dataset.Source, theta int) (searchRunner, error) {
	fed, err := core.NewFederation(sources, core.Config{Theta: theta})
	if err != nil {
		return searchRunner{}, err
	}
	fmt.Printf("in-process federation: %d sources\n", len(sources))
	return searchRunner{
		overlap:  fed.OverlapSearch,
		coverage: fed.CoverageSearch,
		metrics:  fed.Metrics,
	}, nil
}

func dialRemote(addrs string, sources []*dataset.Source, theta int, boundsFlag string) (searchRunner, error) {
	bounds := geo.EmptyRect
	if boundsFlag != "" {
		parts := strings.Split(boundsFlag, ",")
		if len(parts) != 4 {
			return searchRunner{}, fmt.Errorf("bounds must be minX,minY,maxX,maxY")
		}
		vals := make([]float64, 4)
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return searchRunner{}, err
			}
			vals[i] = v
		}
		bounds = geo.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	} else {
		for _, s := range sources {
			bounds = bounds.Union(s.Bounds())
		}
	}
	grid := geo.NewGrid(theta, bounds)
	center := federation.NewCenter(grid, federation.DefaultOptions())
	for _, addr := range strings.Split(addrs, ",") {
		peer, err := transport.Dial(addr, strings.TrimSpace(addr), center.Metrics)
		if err != nil {
			return searchRunner{}, err
		}
		summary, err := center.RegisterRemote(context.Background(), peer)
		if err != nil {
			return searchRunner{}, err
		}
		fmt.Printf("registered remote source %q at %s\n", summary.Name, addr)
	}
	return searchRunner{
		overlap: func(pts []geo.Point, k int) ([]core.Result, error) {
			rs, err := center.OverlapSearch(context.Background(), cellset.FromPoints(grid, pts), k)
			if err != nil {
				return nil, err
			}
			out := make([]core.Result, len(rs))
			for i, r := range rs {
				out[i] = core.Result{Source: r.Source, ID: r.ID, Name: r.Name, Score: r.Overlap}
			}
			return out, nil
		},
		coverage: func(pts []geo.Point, delta float64, k int) (core.CoverageOutcome, error) {
			res, err := center.CoverageSearch(context.Background(), cellset.FromPoints(grid, pts), delta, k)
			if err != nil {
				return core.CoverageOutcome{}, err
			}
			out := core.CoverageOutcome{Coverage: res.Coverage, QueryCoverage: res.QueryCoverage}
			for _, r := range res.Picked {
				out.Results = append(out.Results, core.Result{Source: r.Source, ID: r.ID, Name: r.Name, Score: r.Overlap})
			}
			return out, nil
		},
		metrics: func() *transport.Metrics { return center.Metrics },
	}, nil
}

func loadSources(dir string) ([]*dataset.Source, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.gob"))
	if err != nil {
		return nil, err
	}
	var out []*dataset.Source
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		var src dataset.Source
		err = gob.NewDecoder(f).Decode(&src)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("decode %s: %w", p, err)
		}
		out = append(out, &src)
	}
	return out, nil
}

func resolveQuery(sources []*dataset.Source, q string) ([]geo.Point, string, error) {
	if q == "" {
		src := sources[0]
		d := src.Datasets[0]
		return d.Points, src.Name + ":0 (default)", nil
	}
	name, idxStr, ok := strings.Cut(q, ":")
	if !ok {
		return nil, "", fmt.Errorf("query must be Source:index, got %q", q)
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil {
		return nil, "", fmt.Errorf("bad query index %q: %w", idxStr, err)
	}
	for _, src := range sources {
		if src.Name != name {
			continue
		}
		if idx < 0 || idx >= len(src.Datasets) {
			return nil, "", fmt.Errorf("source %s has %d datasets, index %d out of range",
				name, len(src.Datasets), idx)
		}
		return src.Datasets[idx].Points, q, nil
	}
	return nil, "", fmt.Errorf("unknown source %q", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ditsquery:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
