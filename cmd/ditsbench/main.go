// Command ditsbench regenerates the tables and figures of the paper's
// evaluation (§VII) on the synthetic five-source workload.
//
// Usage:
//
//	ditsbench -exp fig9                # one experiment
//	ditsbench -exp all -scale 0.05     # everything, bigger workload
//	ditsbench -exp fig13 -csv out/     # also write CSV files
//
// The setops, fedcomm, and exec experiments additionally support a
// baseline/compare workflow so speedups (and regressions) are
// machine-readable across PRs:
//
//	ditsbench -exp setops -baseline    # snapshot results to BENCH_setops.json
//	ditsbench -exp setops -compare     # rerun and diff against the snapshot
//	ditsbench -exp fedcomm -baseline   # snapshot to BENCH_fedcomm.json
//	ditsbench -exp fedcomm -compare    # diff protocol bytes per query
//	ditsbench -exp exec -baseline      # snapshot to BENCH_exec.json
//	ditsbench -exp exec -compare       # diff executor timings/speedups
//	ditsbench -exp ingest -baseline    # snapshot to BENCH_ingest.json
//	ditsbench -exp ingest -compare     # diff write-path/recovery timings
//	ditsbench -exp load -baseline      # snapshot to BENCH_load.json
//	ditsbench -exp load -compare       # diff throughput/latency/shed rate
//	ditsbench -exp bigsource -baseline # snapshot to BENCH_bigsource.json
//	ditsbench -exp bigsource -compare  # diff beyond-RAM serving latencies
//	ditsbench -exp cluster -baseline   # snapshot to BENCH_cluster.json
//	ditsbench -exp cluster -compare    # diff cluster qps/failover recovery
//
// A -compare without a snapshot on disk is not an error: the run prints a
// WARN table (and a WARN line on stderr) telling how to create the
// baseline, so CI job summaries surface the gap without failing the job.
//
// The ingest experiment can replay a reproducible mutation trace written
// by `datagen -updates N` via -trace; without it an equivalent trace is
// generated in memory.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dits/internal/bench"
)

func main() {
	cfg := bench.DefaultConfig()
	exp := flag.String("exp", "all", "experiment id (table1, table2, fig7..fig22, ablation, throughput, setops, fedcomm, exec, ingest, load, bigsource, cluster) or 'all'")
	csvDir := flag.String("csv", "", "directory to also write CSV files into")
	list := flag.Bool("list", false, "list available experiments and exit")
	baseline := flag.Bool("baseline", false, "with -exp setops/fedcomm/exec/ingest/load/bigsource/cluster: snapshot results to -benchfile")
	compare := flag.Bool("compare", false, "with -exp setops/fedcomm/exec/ingest/load/bigsource/cluster: diff results against the -benchfile snapshot")
	benchFile := flag.String("benchfile", "", "snapshot file for -baseline/-compare (default BENCH_<exp>.json)")
	flag.Float64Var(&cfg.Scale, "scale", cfg.Scale, "workload scale as a multiple of Table I sizes")
	flag.Float64Var(&cfg.OverlapScale, "overlapscale", cfg.OverlapScale,
		"workload scale for the OJSP figures 9-12 (0 = same as -scale)")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "workload seed")
	flag.IntVar(&cfg.Theta, "theta", cfg.Theta, "default grid resolution θ")
	flag.IntVar(&cfg.K, "k", cfg.K, "default number of results k")
	flag.IntVar(&cfg.Q, "q", cfg.Q, "default number of queries q")
	flag.Float64Var(&cfg.Delta, "delta", cfg.Delta, "default connectivity threshold δ")
	flag.IntVar(&cfg.F, "f", cfg.F, "default leaf capacity f")
	flag.IntVar(&cfg.Workers, "workers", cfg.Workers, "max worker-pool size for the exec experiment")
	flag.StringVar(&cfg.TracePath, "trace", "", "mutation trace file (datagen -updates) for the ingest experiment")
	flag.Float64Var(&cfg.LoadSecs, "loadsecs", 3, "per-scenario duration in seconds for the load experiment")
	flag.Float64Var(&cfg.BigScale, "bigscale", cfg.BigScale, "workload scale of the bigsource experiment's beyond-RAM index")
	flag.IntVar(&cfg.RSSBudgetMB, "rss-budget-mb", cfg.RSSBudgetMB,
		"RSS budget in MiB the bigsource experiment must stay under while serving mmap'd (Linux-enforced)")
	covSrc := flag.String("coverage-sources", strings.Join(cfg.CoverageSources, ","),
		"comma-separated sources for the CJSP figures ('' = all five)")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg.CoverageSources = nil
	if *covSrc != "" {
		cfg.CoverageSources = strings.Split(*covSrc, ",")
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = nil
		seen := map[string]bool{"fig14": true, "fig20": true} // emitted with 13/19
		for _, e := range bench.All() {
			if !seen[e.ID] {
				seen[e.ID] = true
				ids = append(ids, e.ID)
			}
		}
	}

	for _, id := range ids {
		start := time.Now()
		var (
			tables []bench.Table
			err    error
		)
		file := *benchFile
		if file == "" {
			file = "BENCH_" + id + ".json"
		}
		switch {
		case id == "setops" && (*baseline || *compare):
			tables, err = runSetopsSnapshot(cfg, *baseline, *compare, file)
		case id == "fedcomm" && (*baseline || *compare):
			tables, err = runFedcommSnapshot(cfg, *baseline, *compare, file)
		case id == "exec" && (*baseline || *compare):
			tables, err = runExecSnapshot(cfg, *baseline, *compare, file)
		case id == "ingest" && (*baseline || *compare):
			tables, err = runIngestSnapshot(cfg, *baseline, *compare, file)
		case id == "load" && (*baseline || *compare):
			tables, err = runLoadSnapshot(cfg, *baseline, *compare, file)
		case id == "bigsource" && (*baseline || *compare):
			tables, err = runBigsourceSnapshot(cfg, *baseline, *compare, file)
		case id == "cluster" && (*baseline || *compare):
			tables, err = runClusterSnapshot(cfg, *baseline, *compare, file)
		default:
			tables, err = bench.Run(id, cfg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// warnNoBaseline handles a -compare with no snapshot on disk: it prints
// an explicit WARN line on stderr and returns a WARN table so the gap is
// visible in job summaries, without failing the run — a missing baseline
// is a setup gap, not a regression. Read errors other than "file does not
// exist" (corrupt JSON, wrong schema) stay fatal at the call sites.
func warnNoBaseline(exp, file string) bench.Table {
	fmt.Fprintf(os.Stderr, "WARN: no baseline for %s (%s does not exist); comparison skipped\n", exp, file)
	return bench.Table{
		ID:     exp + "-compare",
		Title:  "WARN: no baseline for " + exp,
		Header: []string{"status"},
		Rows: [][]string{{fmt.Sprintf(
			"no baseline: %s does not exist — run `ditsbench -exp %s -baseline` to create it", file, exp)}},
	}
}

// runSetopsSnapshot runs the setops experiment with the dtail-tools-style
// baseline/compare workflow: -baseline snapshots the fresh results into
// file, -compare diffs the fresh results against the existing snapshot.
// Both may be given together (compare against the old snapshot, then
// overwrite it).
func runSetopsSnapshot(cfg bench.Config, baseline, compare bool, file string) ([]bench.Table, error) {
	report, tables := bench.RunSetops(cfg)
	if compare {
		base, err := bench.ReadSetops(file)
		switch {
		case err == nil:
			tables = append(tables, bench.CompareSetops(base, report))
		case errors.Is(err, os.ErrNotExist):
			tables = append(tables, warnNoBaseline("setops", file))
		default:
			return nil, fmt.Errorf("load baseline for setops: %w", err)
		}
	}
	if baseline {
		if err := bench.WriteSetops(file, report); err != nil {
			return nil, err
		}
		fmt.Printf("baseline snapshot written to %s\n\n", file)
	}
	return tables, nil
}

// runFedcommSnapshot is the same workflow for the federation-protocol
// experiment: -baseline snapshots bytes/round-trips per query, -compare
// diffs a fresh run against the snapshot. The run itself enforces
// stateless/session result parity and errors out on any divergence.
func runFedcommSnapshot(cfg bench.Config, baseline, compare bool, file string) ([]bench.Table, error) {
	report, tables, err := bench.RunFedcomm(cfg)
	if err != nil {
		return nil, err
	}
	if compare {
		base, err := bench.ReadFedcomm(file)
		switch {
		case err == nil:
			tables = append(tables, bench.CompareFedcomm(base, report))
		case errors.Is(err, os.ErrNotExist):
			tables = append(tables, warnNoBaseline("fedcomm", file))
		default:
			return nil, fmt.Errorf("load baseline for fedcomm: %w", err)
		}
	}
	if baseline {
		if err := bench.WriteFedcomm(file, report); err != nil {
			return nil, err
		}
		fmt.Printf("baseline snapshot written to %s\n\n", file)
	}
	return tables, nil
}

// runExecSnapshot is the same workflow for the query-executor experiment:
// -baseline snapshots sequential/parallel/batched timings, -compare diffs
// a fresh run against the snapshot. The run itself enforces result parity
// between every executor configuration and the sequential searcher.
func runExecSnapshot(cfg bench.Config, baseline, compare bool, file string) ([]bench.Table, error) {
	report, tables, err := bench.RunExec(cfg)
	if err != nil {
		return nil, err
	}
	if compare {
		base, err := bench.ReadExec(file)
		switch {
		case err == nil:
			tables = append(tables, bench.CompareExec(base, report))
		case errors.Is(err, os.ErrNotExist):
			tables = append(tables, warnNoBaseline("exec", file))
		default:
			return nil, fmt.Errorf("load baseline for exec: %w", err)
		}
	}
	if baseline {
		if err := bench.WriteExec(file, report); err != nil {
			return nil, err
		}
		fmt.Printf("baseline snapshot written to %s\n\n", file)
	}
	return tables, nil
}

// runIngestSnapshot is the same workflow for the durable write path:
// -baseline snapshots apply/rebuild/WAL/recovery timings, -compare diffs
// a fresh run against the snapshot. The run itself enforces byte-identical
// search results between every recovered store and the in-process oracle.
func runIngestSnapshot(cfg bench.Config, baseline, compare bool, file string) ([]bench.Table, error) {
	report, tables, err := bench.RunIngest(cfg)
	if err != nil {
		return nil, err
	}
	if compare {
		base, err := bench.ReadIngest(file)
		switch {
		case err == nil:
			tables = append(tables, bench.CompareIngest(base, report))
		case errors.Is(err, os.ErrNotExist):
			tables = append(tables, warnNoBaseline("ingest", file))
		default:
			return nil, fmt.Errorf("load baseline for ingest: %w", err)
		}
	}
	if baseline {
		if err := bench.WriteIngest(file, report); err != nil {
			return nil, err
		}
		fmt.Printf("baseline snapshot written to %s\n\n", file)
	}
	return tables, nil
}

// runLoadSnapshot is the same workflow for the serving-stack load
// experiment: -baseline snapshots throughput/latency/shed-rate per
// scenario, -compare diffs a fresh run against the snapshot (latency
// drift across hardware is informational, never a failure).
func runLoadSnapshot(cfg bench.Config, baseline, compare bool, file string) ([]bench.Table, error) {
	report, tables, err := bench.RunLoad(cfg)
	if err != nil {
		return nil, err
	}
	if compare {
		base, err := bench.ReadLoad(file)
		switch {
		case err == nil:
			tables = append(tables, bench.CompareLoad(base, report))
		case errors.Is(err, os.ErrNotExist):
			tables = append(tables, warnNoBaseline("load", file))
		default:
			return nil, fmt.Errorf("load baseline for load: %w", err)
		}
	}
	if baseline {
		if err := bench.WriteLoad(file, report); err != nil {
			return nil, err
		}
		fmt.Printf("baseline snapshot written to %s\n\n", file)
	}
	return tables, nil
}

// runBigsourceSnapshot is the same workflow for the beyond-RAM serving
// experiment: -baseline snapshots per-phase latencies and memory posture,
// -compare diffs a fresh run against the snapshot. The run itself enforces
// mmap/heap result parity and (on Linux) the serving RSS budget.
func runBigsourceSnapshot(cfg bench.Config, baseline, compare bool, file string) ([]bench.Table, error) {
	report, tables, err := bench.RunBigsource(cfg)
	if err != nil {
		return nil, err
	}
	if compare {
		base, err := bench.ReadBigsource(file)
		switch {
		case err == nil:
			tables = append(tables, bench.CompareBigsource(base, report))
		case errors.Is(err, os.ErrNotExist):
			tables = append(tables, warnNoBaseline("bigsource", file))
		default:
			return nil, fmt.Errorf("load baseline for bigsource: %w", err)
		}
	}
	if baseline {
		if err := bench.WriteBigsource(file, report); err != nil {
			return nil, err
		}
		fmt.Printf("baseline snapshot written to %s\n\n", file)
	}
	return tables, nil
}

// runClusterSnapshot is the same workflow for the sharded federation
// plane: -baseline snapshots qps/latency per center count plus failover
// recovery times, -compare diffs a fresh run against the snapshot. The
// run itself enforces byte-identical scatter/gather results against a
// single-center oracle and zero failed requests through both kills.
func runClusterSnapshot(cfg bench.Config, baseline, compare bool, file string) ([]bench.Table, error) {
	report, tables, err := bench.RunCluster(cfg)
	if err != nil {
		return nil, err
	}
	if compare {
		base, err := bench.ReadCluster(file)
		switch {
		case err == nil:
			tables = append(tables, bench.CompareCluster(base, report))
		case errors.Is(err, os.ErrNotExist):
			tables = append(tables, warnNoBaseline("cluster", file))
		default:
			return nil, fmt.Errorf("load baseline for cluster: %w", err)
		}
	}
	if baseline {
		if err := bench.WriteCluster(file, report); err != nil {
			return nil, err
		}
		fmt.Printf("baseline snapshot written to %s\n\n", file)
	}
	return tables, nil
}

func writeCSV(dir string, t bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := t.ID + "_" + sanitize(t.Title) + ".csv"
	return os.WriteFile(filepath.Join(dir, name), []byte(t.CSV()), 0o644)
}

func sanitize(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			b.WriteByte('_')
		}
	}
	name := b.String()
	if len(name) > 60 {
		name = name[:60]
	}
	return name
}
