module dits

go 1.24
