// Municipal planning: the paper's motivating scenario (Example 1).
//
//	go run ./examples/municipal
//
// A planner holds a query route in one city and needs two things:
//
//  1. routes with maximum spatial overlap, to analyze traffic on the same
//     corridor (OJSP, Fig. 1(b));
//  2. routes that connect to the query and extend coverage into the
//     neighboring region, to build transfer routes (CJSP, Fig. 1(c)) —
//     connectivity matters because riders cannot transfer between routes
//     that never come near each other.
//
// The example also demonstrates live index maintenance: a new route is
// opened (Insert) and an old one rerouted (Update), and the searches
// immediately reflect it.
package main

import (
	"fmt"
	"log"

	"dits/internal/core"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/workload"
)

func main() {
	spec, err := workload.SpecByName("Transit")
	if err != nil {
		log.Fatal(err)
	}
	src := workload.Generate(spec, 0.1, 7)
	eng, err := core.NewEngine(src, core.Config{Theta: 12})
	if err != nil {
		log.Fatal(err)
	}
	query := src.Datasets[3].Points
	fmt.Printf("planning around route %q (%d stops)\n\n", src.Datasets[3].Name, len(query))

	// Task 1: deepen — who already serves this corridor?
	fmt.Println("task 1: most-overlapping routes (candidates for joint analysis)")
	report(eng.OverlapSearch(query, 4))

	// Task 2: widen — which connected routes extend coverage the most?
	fmt.Println("\ntask 2: connected routes maximizing coverage (transfer planning)")
	cov := eng.CoverageSearch(query, 8, 4)
	reportCoverage(cov)

	// The city opens a new feeder line hugging the query route's start.
	feeder := &dataset.Dataset{
		ID:   100000,
		Name: "new-feeder-line",
		// A short line jittered around the query's first stops.
		Points: jitter(query[:min(len(query), 40)], 0.001),
	}
	if err := eng.Insert(feeder); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter opening new-feeder-line, overlap search sees it immediately:")
	report(eng.OverlapSearch(query, 4))

	// An existing route is rerouted away; update then re-run coverage.
	rerouted := &dataset.Dataset{
		ID:     src.Datasets[10].ID,
		Name:   src.Datasets[10].Name + "-rerouted",
		Points: shift(src.Datasets[10].Points, 0.02, 0.02),
	}
	if err := eng.Update(rerouted); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter rerouting, coverage search over the updated network:")
	reportCoverage(eng.CoverageSearch(query, 8, 4))
}

func report(rs []core.Result) {
	if len(rs) == 0 {
		fmt.Println("  (none)")
		return
	}
	for i, r := range rs {
		fmt.Printf("  %d. %-22s overlap=%d cells\n", i+1, r.Name, r.Score)
	}
}

func reportCoverage(cov core.CoverageOutcome) {
	fmt.Printf("  query alone: %d cells\n", cov.QueryCoverage)
	for i, r := range cov.Results {
		fmt.Printf("  %d. %-22s gain=+%d cells\n", i+1, r.Name, r.Score)
	}
	fmt.Printf("  combined coverage: %d cells\n", cov.Coverage)
}

func jitter(pts []geo.Point, amp float64) []geo.Point {
	out := make([]geo.Point, len(pts))
	for i, p := range pts {
		// Deterministic pseudo-jitter; no randomness needed for a demo.
		dx := amp * float64((i%7)-3) / 3
		dy := amp * float64((i%5)-2) / 2
		out[i] = geo.Pt(p.X+dx, p.Y+dy)
	}
	return out
}

func shift(pts []geo.Point, dx, dy float64) []geo.Point {
	out := make([]geo.Point, len(pts))
	for i, p := range pts {
		out[i] = geo.Pt(p.X+dx, p.Y+dy)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
