// Federated search over real TCP: three autonomous data sources serve
// their DITS-L indexes on loopback sockets; a data center builds DITS-G
// from their uploaded summaries and runs both joinable searches, reporting
// the communication cost the query-distribution strategies save.
//
//	go run ./examples/federated
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/federation"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/transport"
	"dits/internal/workload"
)

func main() {
	// Three sources sharing one world grid (the federation requirement).
	specs := []string{"Transit", "Baidu", "NYU"}
	world := geo.EmptyRect
	var sources []*workloadSource
	for i, name := range specs {
		spec, err := workload.SpecByName(name)
		if err != nil {
			log.Fatal(err)
		}
		src := workload.Generate(spec, 0.02, int64(10+i))
		world = world.Union(src.Bounds())
		sources = append(sources, &workloadSource{name: name, src: src})
	}
	grid := geo.NewGrid(12, world)

	// Each source runs its own TCP server.
	for _, s := range sources {
		idx := dits.Build(grid, s.src.Nodes(grid), 30)
		s.server = federation.NewSourceServerWithGrid(s.name, idx)
		srv, err := transport.Serve("127.0.0.1:0", s.server.Handler())
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		s.addr = srv.Addr()
		// The ephemeral port changes per run; keep the printed output
		// stable (and quotable in docs) by not echoing it.
		fmt.Printf("source %-8s serving %4d datasets on a loopback TCP socket\n", s.name, idx.Len())
	}

	// The data center dials each source and registers its summary.
	center := federation.NewCenter(grid, federation.DefaultOptions())
	for _, s := range sources {
		peer, err := transport.Dial(s.name, s.addr, center.Metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer peer.Close()
		center.Register(s.server.Summary(), peer)
	}

	// Query: one transit route, as cells under the shared grid.
	query := cellset.FromPoints(grid, sources[0].src.Datasets[2].Points)
	fmt.Printf("\nquery covers %d cells\n", query.Len())

	rs, err := center.OverlapSearch(context.Background(), query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfederated overlap joinable search (k=5):")
	for i, r := range rs {
		fmt.Printf("  %d. [%s] %-16s overlap=%d\n", i+1, r.Source, r.Name, r.Overlap)
	}
	fmt.Printf("communication: %d messages, %d bytes\n",
		center.Metrics.Messages(), center.Metrics.Bytes())

	center.Metrics.Reset()
	cov, err := center.CoverageSearch(context.Background(), query, 10, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfederated coverage joinable search (k=5, δ=10):")
	for i, r := range cov.Picked {
		fmt.Printf("  %d. [%s] %-16s gain=+%d\n", i+1, r.Source, r.Name, r.Overlap)
	}
	fmt.Printf("coverage: %d cells (query alone %d)\n", cov.Coverage, cov.QueryCoverage)
	fmt.Printf("communication: %d messages, %d bytes\n",
		center.Metrics.Messages(), center.Metrics.Bytes())

	// Per-method breakdown. PerMethod returns a map, whose iteration
	// order varies run to run — print it sorted so the output is stable.
	per := center.Metrics.PerMethod()
	methods := make([]string, 0, len(per))
	for m := range per {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	for _, m := range methods {
		st := per[m]
		fmt.Printf("  %-15s %2d calls, %5d B sent, %5d B received\n",
			m, st.Calls, st.BytesSent, st.BytesReceived)
	}

	// Show what the distribution strategies buy: the same overlap search
	// with broadcast-everything shipping.
	naive := federation.NewCenter(grid, federation.Options{})
	for _, s := range sources {
		peer, err := transport.Dial(s.name, s.addr, naive.Metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer peer.Close()
		naive.Register(s.server.Summary(), peer)
	}
	if _, err := naive.OverlapSearch(context.Background(), query, 5); err != nil {
		log.Fatal(err)
	}
	center.Metrics.Reset()
	if _, err := center.OverlapSearch(context.Background(), query, 5); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery distribution strategies: %d bytes vs %d bytes broadcast\n",
		center.Metrics.Bytes(), naive.Metrics.Bytes())
}

type workloadSource struct {
	name   string
	src    *dataset.Source
	server *federation.SourceServer
	addr   string
}
