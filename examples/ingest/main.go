// Live ingestion end to end: a mutable source backed by a WAL-durable
// store serves a federation; mutations stream in through the data
// center (the same path the gateway's POST /ingest/dataset takes), query
// answers change accordingly with the result cache invalidated by data
// version, and a restart recovers the exact post-mutation state from
// snapshot + WAL.
//
//	go run ./examples/ingest
//
// The output is deterministic run to run.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"reflect"

	"dits/internal/cache"
	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/federation"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/ingest"
	"dits/internal/transport"
	"dits/internal/workload"
)

func main() {
	// Durable state lives in a scratch directory; a real deployment
	// passes -wal-dir to ditsserve instead.
	stateDir, err := os.MkdirTemp("", "dits-ingest-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)

	// One Transit-shaped source under its own grid.
	spec, err := workload.SpecByName("Transit")
	if err != nil {
		log.Fatal(err)
	}
	src := workload.Generate(spec, 0.02, 7)
	grid := geo.NewGrid(12, src.Bounds())

	store, err := ingest.Open(stateDir, ingest.Options{
		Fsync:         ingest.FsyncAlways,
		SnapshotEvery: 64,
		Bootstrap: func() (*dits.Local, error) {
			return dits.Build(grid, src.Nodes(grid), 30), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	server := federation.NewSourceServerWithGrid(src.Name, store.Index())
	server.EnableIngest(store)
	fmt.Printf("source %s: %d datasets indexed, durable store open (fsync=always)\n",
		src.Name, store.Index().Len())

	center := federation.NewCenter(grid, federation.DefaultOptions())
	center.SetCache(cache.New(256))
	center.Register(server.Summary(), &transport.InProc{
		Name: src.Name, Handler: server.Handler(), Metrics: center.Metrics,
	})

	// The query: one transit route's cells.
	query := cellset.FromPoints(grid, src.Datasets[2].Points)
	fmt.Printf("query covers %d cells\n\n", query.Len())

	show := func(label string) []federation.SourceResult {
		rs, err := center.OverlapSearch(context.Background(), query, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (k=5):\n", label)
		for i, r := range rs {
			fmt.Printf("  %d. %-24s overlap=%d\n", i+1, r.Name, r.Overlap)
		}
		return rs
	}
	show("overlap search before ingest")

	// Stream a reproducible mutation trace through the center — the same
	// trace datagen -updates emits and ditsbench -exp ingest replays.
	trace := workload.GenerateTrace([]*dataset.Source{src}, 80, 99)
	var puts, deletes, skipped int
	for _, m := range trace {
		if m.Op == workload.MutDelete {
			res, err := center.DeleteDataset(context.Background(), m.Source, m.ID)
			if err != nil {
				log.Fatal(err)
			}
			if res.Found {
				deletes++
			} else {
				skipped++
			}
			continue
		}
		pts := make([]geo.Point, len(m.Points))
		for i, p := range m.Points {
			pts[i] = geo.Point{X: p[0], Y: p[1]}
		}
		cells := cellset.FromPoints(grid, pts)
		if cells.IsEmpty() {
			skipped++
			continue
		}
		if _, err := center.PutDataset(context.Background(), m.Source, m.ID, m.Name, cells); err != nil {
			log.Fatal(err)
		}
		puts++
	}
	fmt.Printf("\nstreamed %d mutations (%d puts, %d deletes, %d skipped)\n",
		len(trace), puts, deletes, skipped)
	fmt.Printf("source data version %d; cache invalidations %d\n\n",
		center.SourceVersions()[src.Name], center.CacheInvalidations())

	after := show("overlap search after ingest")

	// Restart: close everything, recover from snapshot + WAL tail, and
	// verify the recovered federation answers identically.
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	recovered, err := ingest.Open(stateDir, ingest.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	// The snapshot/WAL split varies with background-compaction timing
	// (st.Replayed says how many records the snapshot had not absorbed);
	// the recovered version and answers never do.
	st := recovered.Stats()
	fmt.Printf("\nrestart: recovered version %d from snapshot + WAL tail\n", st.Version)

	server2 := federation.NewSourceServerWithGrid(src.Name, recovered.Index())
	server2.EnableIngest(recovered)
	center2 := federation.NewCenter(grid, federation.DefaultOptions())
	center2.Register(server2.Summary(), &transport.InProc{Name: src.Name, Handler: server2.Handler()})
	rs2, err := center2.OverlapSearch(context.Background(), query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-restart results identical: %v\n", reflect.DeepEqual(after, rs2))
}
