// Quickstart: index one spatial data source and run both joinable searches.
//
//	go run ./examples/quickstart
//
// It generates a small synthetic transit source (the stand-in for the
// paper's Maryland/DC portal), indexes it with DITS-L, and runs an overlap
// joinable search (OJSP) and a coverage joinable search (CJSP) for one
// query route.
package main

import (
	"fmt"
	"log"

	"dits/internal/core"
	"dits/internal/workload"
)

func main() {
	// 1. Get a data source. Any *dataset.Source works; here we generate a
	// synthetic one shaped like the paper's Transit portal.
	spec, err := workload.SpecByName("Transit")
	if err != nil {
		log.Fatal(err)
	}
	src := workload.Generate(spec, 0.05, 42)
	fmt.Printf("source %q: %d datasets, %d points\n\n",
		src.Name, src.NumDatasets(), src.NumPoints())

	// 2. Build the engine: grid partition (θ) + DITS-L index (f).
	eng, err := core.NewEngine(src, core.Config{Theta: 12, LeafCapacity: 30})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The query is a plain point set; we use one of the routes.
	query := src.Datasets[7].Points

	// 4. OJSP: the k most-overlapping datasets (depth: near-duplicates,
	// densification of the same corridor).
	fmt.Println("overlap joinable search (k=5):")
	for i, r := range eng.OverlapSearch(query, 5) {
		fmt.Printf("  %d. %-16s overlap=%d cells\n", i+1, r.Name, r.Score)
	}

	// 5. CJSP: k connected datasets maximizing joint coverage (width:
	// extending the network around the query).
	fmt.Println("\ncoverage joinable search (k=5, δ=10):")
	out := eng.CoverageSearch(query, 10, 5)
	fmt.Printf("  query alone covers %d cells\n", out.QueryCoverage)
	for i, r := range out.Results {
		fmt.Printf("  %d. %-16s gain=+%d cells\n", i+1, r.Name, r.Score)
	}
	fmt.Printf("  together: %d cells\n", out.Coverage)
}
