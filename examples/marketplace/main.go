// Data marketplace: the paper's future-work extension ("spatial dataset
// search based on data pricing"). Each dataset in the source carries a
// price; a buyer holds a query region and a budget and wants the connected
// datasets that maximize coverage per money spent.
//
//	go run ./examples/marketplace
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/search/coverage"
	"dits/internal/workload"
)

func main() {
	spec, err := workload.SpecByName("Baidu")
	if err != nil {
		log.Fatal(err)
	}
	src := workload.Generate(spec, 0.05, 99)

	g := geo.NewGrid(12, src.Bounds())
	nodes := src.Nodes(g)
	idx := dits.Build(g, nodes, 30)

	// Sellers price datasets roughly by size: bigger coverage, higher price.
	rng := rand.New(rand.NewSource(7))
	pricing := coverage.Pricing{Prices: make(map[int]float64), DefaultPrice: 1}
	for _, nd := range nodes {
		base := float64(nd.Cells.Len()) / 50
		pricing.Prices[nd.ID] = 1 + base*(0.5+rng.Float64())
	}

	q := dataset.NewNode(g, src.Datasets[11])
	if q == nil {
		log.Fatal("empty query dataset")
	}
	q.ID = -1
	fmt.Printf("buyer query %q covers %d cells\n\n", src.Datasets[11].Name, q.Cells.Len())

	for _, budget := range []float64{5, 20, 80} {
		res := coverage.PricedSearch(idx, q, 10, budget, 0, pricing)
		fmt.Printf("budget %6.2f -> bought %d datasets, spent %6.2f, coverage %d cells (+%d)\n",
			budget, len(res.Picked), res.Spent, res.Coverage, res.Coverage-res.QueryCoverage)
		for i, nd := range res.Picked {
			fmt.Printf("   %d. %-14s price %5.2f  coverage %4d cells\n",
				i+1, nd.Name, pricing.PriceOf(nd.ID), nd.Cells.Len())
		}
		fmt.Println()
	}

	// Contrast with the unpriced greedy, which ignores cost entirely.
	plain := (&coverage.DITSSearcher{Index: idx}).Search(q, 10, 5)
	var cost float64
	for _, nd := range plain.Picked {
		cost += pricing.PriceOf(nd.ID)
	}
	fmt.Printf("unpriced CJSP greedy picks %d datasets covering %d cells — would cost %.2f\n",
		len(plain.Picked), plain.Coverage, cost)
}
